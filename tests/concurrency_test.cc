// Concurrency tests (docs/CONCURRENCY.md): the worker-pool primitives, and
// the backbone invariant of the concurrent query path — N threads hammering
// RunQueriesConcurrent produce bit-exact per-query results, bit-exact
// I/O-derived aggregates, and merged HFF cache counters equal to the serial
// totals. A final test races queries against maintenance-style cache
// rebuilds: publication is atomic, so every answer stays exact.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "cache/exact_cache.h"
#include "cache/knn_cache.h"
#include "common/dataset.h"
#include "core/health.h"
#include "core/system.h"
#include "core/task_queue.h"
#include "core/thread_pool.h"
#include "hist/frequency.h"
#include "storage/mem_env.h"
#include "workload/generator.h"

namespace eeb {
namespace {

constexpr size_t kThreads = 8;

// ---- BoundedTaskQueue / ThreadPool units ---------------------------------

TEST(BoundedTaskQueueTest, FifoSingleThread) {
  core::BoundedTaskQueue q(4);
  std::vector<int> order;
  ASSERT_TRUE(q.Push([&] { order.push_back(1); }));
  ASSERT_TRUE(q.Push([&] { order.push_back(2); }));
  core::BoundedTaskQueue::Task t;
  ASSERT_TRUE(q.Pop(&t));
  t();
  ASSERT_TRUE(q.Pop(&t));
  t();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(BoundedTaskQueueTest, ShutdownRejectsPushButDrainsPending) {
  core::BoundedTaskQueue q(4);
  int ran = 0;
  ASSERT_TRUE(q.Push([&] { ran++; }));
  q.Shutdown();
  EXPECT_FALSE(q.Push([&] { ran += 100; }));
  core::BoundedTaskQueue::Task t;
  ASSERT_TRUE(q.Pop(&t));  // enqueued before Shutdown: still delivered
  t();
  EXPECT_FALSE(q.Pop(&t));  // closed and drained
  EXPECT_EQ(ran, 1);
}

TEST(BoundedTaskQueueTest, PushBlocksAtCapacityUntilPop) {
  core::BoundedTaskQueue q(1);
  ASSERT_TRUE(q.Push([] {}));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push([] {}));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer must be blocked: the queue is full.
  EXPECT_EQ(q.size(), 1u);
  core::BoundedTaskQueue::Task t;
  ASSERT_TRUE(q.Pop(&t));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedTaskQueueTest, TryPushShedsWhenFullAndRecoversAfterPop) {
  core::BoundedTaskQueue q(2);
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kAccepted);
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kAccepted);
  // Full: the verdict is immediate, no blocking.
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kFull);
  core::BoundedTaskQueue::Task t;
  ASSERT_TRUE(q.Pop(&t));
  // One freed slot is enough to admit again.
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kAccepted);
}

TEST(BoundedTaskQueueTest, TryPushAfterShutdownReportsClosed) {
  core::BoundedTaskQueue q(4);
  q.Shutdown();
  // kClosed, not kFull: the caller must distinguish "overloaded" (retry
  // later) from "wound down" (stop submitting).
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kClosed);
  EXPECT_EQ(q.PushWithDeadline([] {}, 50.0), core::PushOutcome::kClosed);
}

TEST(BoundedTaskQueueTest, PushWithDeadlineTimesOutOnAPersistentlyFullQueue) {
  core::BoundedTaskQueue q(1);
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kAccepted);
  // Nobody pops: the bounded wait must expire with kTimedOut, naming the
  // policy that rejected the task (not kFull).
  EXPECT_EQ(q.PushWithDeadline([] {}, 5.0), core::PushOutcome::kTimedOut);
  // A zero budget degenerates to TryPush semantics.
  EXPECT_EQ(q.PushWithDeadline([] {}, 0.0), core::PushOutcome::kTimedOut);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedTaskQueueTest, PushWithDeadlineAdmitsWhenAConsumerFreesASlot) {
  core::BoundedTaskQueue q(1);
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kAccepted);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    core::BoundedTaskQueue::Task t;
    ASSERT_TRUE(q.Pop(&t));
  });
  // A generous budget outlives the consumer's delay: the wait ends in
  // admission, not a timeout.
  EXPECT_EQ(q.PushWithDeadline([] {}, 10000.0), core::PushOutcome::kAccepted);
  consumer.join();
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedTaskQueueTest, StatsReconcileAttemptsAcrossShutdown) {
  core::BoundedTaskQueue q(2);
  uint64_t attempts = 0;
  ASSERT_TRUE(q.Push([] {}));
  attempts++;
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kAccepted);
  attempts++;
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kFull);
  attempts++;
  EXPECT_EQ(q.PushWithDeadline([] {}, 0.0), core::PushOutcome::kTimedOut);
  attempts++;

  core::QueueStats s = q.Stats();
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.pushed, 2u);
  EXPECT_EQ(s.popped, 0u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_FALSE(s.closed);
  EXPECT_EQ(attempts, s.pushed + s.rejected);

  core::BoundedTaskQueue::Task t;
  ASSERT_TRUE(q.Pop(&t));
  ASSERT_TRUE(q.Pop(&t));
  q.Shutdown();
  EXPECT_FALSE(q.Push([] {}));
  attempts++;
  EXPECT_EQ(q.TryPush([] {}), core::PushOutcome::kClosed);
  attempts++;

  // Totals survive Shutdown: the post-mortem of a saturated window reads
  // the same numbers the live gauges published.
  s = q.Stats();
  EXPECT_TRUE(s.closed);
  EXPECT_EQ(s.depth, 0u);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.pushed, 2u);
  EXPECT_EQ(s.popped, 2u);
  EXPECT_EQ(s.rejected, 4u);
  EXPECT_EQ(attempts, s.pushed + s.rejected);
  EXPECT_FALSE(q.Pop(&t));
}

TEST(ThreadPoolTest, RunsEveryTaskAcrossThreads) {
  core::ThreadPool pool(kThreads);
  constexpr int kTasks = 500;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), kTasks);
  // Drain is a barrier, not a shutdown: the pool accepts more work.
  ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  pool.Drain();
  EXPECT_EQ(ran.load(), kTasks + 1);
}

TEST(ThreadPoolTest, DrainWithNothingSubmittedReturnsImmediately) {
  core::ThreadPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.num_threads(), 2u);
}

// ---- Sharded counters vs snapshot/reset interleaving ----------------------

// Minimal KnnCache exposing the protected shard hooks, so the sharded
// counter machinery (per-thread shards, delta publication, merged
// snapshots) is tested without a real cache behind it.
class ShardProbeCache : public cache::KnnCache {
 public:
  bool Probe(std::span<const Scalar>, PointId, double*, double*) override {
    NoteMiss();
    return false;
  }
  size_t item_bytes() const override { return 1; }
  size_t size() const override { return 0; }

  void Hit() { NoteHit(); }
  void Miss() { NoteMiss(); }
  void AdmitOne() { NoteAdmit(); }
  void EvictOne() { NoteEviction(); }
};

TEST(ShardedCountersTest, DeltaPublishSurvivesRegistryResetMidFlight) {
  ShardProbeCache cache;
  obs::MetricsRegistry registry;
  cache.BindMetrics(&registry, "cache");
  obs::Counter* hits = registry.GetCounter("cache.hits");
  obs::Counter* admits = registry.GetCounter("cache.admits");

  // Two-phase writers: each writes half its events, signals, and blocks
  // until the main thread has snapshotted and reset the registry — the
  // reset is guaranteed to land mid-flight, with live concurrent writers on
  // both sides of it, regardless of how the scheduler interleaves things.
  constexpr uint64_t kPerWriter = 5000;
  std::atomic<size_t> half_done{0};
  std::atomic<bool> resume{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        if (i == kPerWriter / 2) {
          half_done.fetch_add(1);
          while (!resume.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
        cache.Hit();
        cache.AdmitOne();
        if (i % 8 == 0) cache.EvictOne();
      }
    });
  }

  // Publish concurrently with the first-half writers, then snapshot + reset
  // at the deterministic halfway barrier. Delta publication must hand every
  // event to the registry exactly once: value-before-reset + value-at-end
  // == total, with no event lost to the reset or double-counted around it.
  while (half_done.load() < kThreads) {
    cache.PublishMetrics();
    std::this_thread::yield();
  }
  cache.PublishMetrics();  // all first-half events are now in the registry
  const uint64_t published_before_reset = hits->value();
  registry.ResetAll();
  resume.store(true, std::memory_order_release);

  for (auto& t : writers) t.join();
  cache.PublishMetrics();

  const uint64_t total = kThreads * kPerWriter;
  EXPECT_EQ(published_before_reset, kThreads * (kPerWriter / 2));
  EXPECT_EQ(published_before_reset + hits->value(), total);
  EXPECT_EQ(cache.stats().hits, total);
  // activity() is the same merged snapshot the live cache tap reads.
  const cache::KnnCache::CacheActivity act = cache.activity();
  EXPECT_EQ(act.hits, total);
  EXPECT_EQ(act.admits, total);
  EXPECT_EQ(act.evictions, kThreads * (kPerWriter / 8));
  EXPECT_LE(admits->value(), total);  // the reset really discarded history
}

TEST(ShardedCountersTest, StatsSnapshotIsMonotoneUnderConcurrentWriters) {
  ShardProbeCache cache;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) cache.Hit();
    });
  }
  // Merged snapshots taken while shards are being written must never go
  // backwards (each shard is read once, relaxed, and only ever increases).
  uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const uint64_t now = cache.stats().hits;
    EXPECT_GE(now, prev);
    prev = now;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GE(cache.stats().hits, prev);
}

TEST(FrequencyArrayTest, MergeReconcilesExactlyAfterMidFlightReset) {
  constexpr uint32_t kNdom = 64;
  constexpr size_t kShards = 8;

  // Reference: both rounds folded single-threaded. Integer weights keep
  // double addition exact, so "reconciles" below means bit-equal.
  hist::FrequencyArray reference(kNdom);
  for (size_t round = 0; round < 2; ++round) {
    for (size_t s = 0; s < kShards; ++s) {
      for (uint32_t v = 0; v < kNdom; ++v) {
        reference.Add(v, static_cast<double>((round + 1) * (s + v % 5)));
      }
    }
  }

  // Concurrent build: per-thread shards, merged and *reset* between rounds
  // (the mid-flight reset a cache rebuild performs), then merged again.
  hist::FrequencyArray total(kNdom);
  std::vector<hist::FrequencyArray> shards(kShards,
                                           hist::FrequencyArray(kNdom));
  for (size_t round = 0; round < 2; ++round) {
    std::vector<std::thread> workers;
    for (size_t s = 0; s < kShards; ++s) {
      workers.emplace_back([&shards, round, s] {
        for (uint32_t v = 0; v < kNdom; ++v) {
          shards[s].Add(v, static_cast<double>((round + 1) * (s + v % 5)));
        }
      });
    }
    for (auto& t : workers) t.join();
    for (size_t s = 0; s < kShards; ++s) {
      total.Merge(shards[s]);
      shards[s] = hist::FrequencyArray(kNdom);  // the mid-flight reset
    }
  }

  for (uint32_t v = 0; v < kNdom; ++v) {
    ASSERT_EQ(total[v], reference[v]) << "value " << v;
  }
  EXPECT_EQ(total.Total(), reference.Total());
}

TEST(FrequencyArrayTest, MergeAccumulatesShards) {
  hist::FrequencyArray total(8);
  hist::FrequencyArray a(8), b(8);
  a.Add(1, 2.0);
  a.Add(7, 1.0);
  b.Add(1, 3.0);
  b.Add(4, 0.5);
  total.Merge(a);
  total.Merge(b);
  EXPECT_DOUBLE_EQ(total[1], 5.0);
  EXPECT_DOUBLE_EQ(total[4], 0.5);
  EXPECT_DOUBLE_EQ(total[7], 1.0);
  EXPECT_DOUBLE_EQ(total.Total(), 6.5);
}

// ---- Concurrent query path ------------------------------------------------

struct ConcurrencyRig {
  storage::MemEnv env;
  Dataset data;
  workload::QueryLog log;
  std::unique_ptr<core::System> system;

  ConcurrencyRig() {
    core::SystemOptions opt;
    opt.ndom = 256;
    // LSH tuned for the 16-dim surrogate (defaults target 64-dim).
    opt.lsh.num_functions = 16;
    opt.lsh.collision_threshold = 8;
    opt.lsh.beta_candidates = 150;
    workload::DatasetSpec dspec;
    dspec.name = "conc";
    dspec.n = 4000;
    dspec.dim = 16;
    dspec.ndom = 256;
    dspec.clusters = 16;
    dspec.cluster_stddev = 12.0;
    dspec.seed = 7;
    data = workload::GenerateClustered(dspec);
    workload::QueryLogSpec lspec;
    lspec.workload_size = 400;
    lspec.test_size = 80;
    lspec.jitter_stddev = 4.0;
    lspec.seed = 11;
    log = workload::GenerateQueryLog(data, lspec);
    EXPECT_TRUE(
        core::System::Create(&env, "/conc", data, log.workload, opt, &system)
            .ok());
    // Static HFF cache: lock-free concurrent probes, deterministic hit/miss
    // totals (an LRU cache's content would depend on arrival interleaving).
    EXPECT_TRUE(system
                    ->ConfigureCache(core::CacheMethod::kHcO,
                                     /*cache_bytes=*/32 << 10, /*tau=*/4)
                    .ok());
  }
};

void ExpectSameIo(const storage::IoStats& a, const storage::IoStats& b) {
  EXPECT_EQ(a.point_reads, b.point_reads);
  EXPECT_EQ(a.page_reads, b.page_reads);
  EXPECT_EQ(a.seq_page_reads, b.seq_page_reads);
  EXPECT_EQ(a.node_reads, b.node_reads);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
}

TEST(ConcurrencyTest, EightThreadsBitExactVsSerialReference) {
  ConcurrencyRig rig;
  const size_t k = 10;

  // Serial reference pass, plus the serial HFF counter totals.
  const cache::CacheStats before_serial = rig.system->cache()->stats();
  std::vector<core::QueryResult> serial(rig.log.test.size());
  for (size_t i = 0; i < rig.log.test.size(); ++i) {
    ASSERT_TRUE(rig.system->Query(rig.log.test[i], k, &serial[i]).ok());
  }
  const cache::CacheStats after_serial = rig.system->cache()->stats();
  const uint64_t serial_hits = after_serial.hits - before_serial.hits;
  const uint64_t serial_misses = after_serial.misses - before_serial.misses;

  // Concurrent pass over the same shared system, 8 workers.
  core::AggregateResult agg;
  std::vector<core::QueryResult> conc;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, kThreads, &agg,
                                         &conc)
                  .ok());
  const cache::CacheStats after_conc = rig.system->cache()->stats();

  // Every query is bit-exact vs the serial reference: ids and every count
  // that feeds the modeled-latency pipeline.
  ASSERT_EQ(conc.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(conc[i].result_ids, serial[i].result_ids) << "query " << i;
    EXPECT_EQ(conc[i].candidates, serial[i].candidates) << "query " << i;
    EXPECT_EQ(conc[i].cache_hits, serial[i].cache_hits) << "query " << i;
    EXPECT_EQ(conc[i].pruned, serial[i].pruned) << "query " << i;
    EXPECT_EQ(conc[i].true_hits, serial[i].true_hits) << "query " << i;
    EXPECT_EQ(conc[i].remaining, serial[i].remaining) << "query " << i;
    EXPECT_EQ(conc[i].fetched, serial[i].fetched) << "query " << i;
    EXPECT_FALSE(conc[i].degraded) << "query " << i;
    ExpectSameIo(conc[i].gen_io, serial[i].gen_io);
    ExpectSameIo(conc[i].refine_io, serial[i].refine_io);
  }

  // Merged sharded counters equal the serial totals exactly.
  EXPECT_EQ(after_conc.hits - after_serial.hits, serial_hits);
  EXPECT_EQ(after_conc.misses - after_serial.misses, serial_misses);
  EXPECT_GT(serial_hits, 0u);
}

TEST(ConcurrencyTest, AggregateBitExactVsSerialRunQueries) {
  ConcurrencyRig rig;
  const size_t k = 10;

  core::AggregateResult serial, conc;
  ASSERT_TRUE(rig.system->RunQueries(rig.log.test, k, &serial).ok());
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, kThreads, &conc)
                  .ok());

  // Aggregation folds per-query results in query order on both paths, so
  // every deterministic (non-CPU-time) field matches bit for bit.
  EXPECT_EQ(conc.queries, serial.queries);
  EXPECT_DOUBLE_EQ(conc.avg_candidates, serial.avg_candidates);
  EXPECT_DOUBLE_EQ(conc.avg_remaining, serial.avg_remaining);
  EXPECT_DOUBLE_EQ(conc.avg_fetched, serial.avg_fetched);
  EXPECT_DOUBLE_EQ(conc.avg_refine_pages, serial.avg_refine_pages);
  EXPECT_DOUBLE_EQ(conc.avg_gen_pages, serial.avg_gen_pages);
  EXPECT_DOUBLE_EQ(conc.avg_gen_seq_pages, serial.avg_gen_seq_pages);
  EXPECT_DOUBLE_EQ(conc.hit_ratio, serial.hit_ratio);
  EXPECT_DOUBLE_EQ(conc.prune_ratio, serial.prune_ratio);
  EXPECT_EQ(conc.degraded_queries, serial.degraded_queries);
  EXPECT_EQ(conc.read_failures, serial.read_failures);
  EXPECT_EQ(conc.deadline_cuts, serial.deadline_cuts);
  EXPECT_GT(conc.hit_ratio, 0.0);
}

TEST(ConcurrencyTest, SingleWorkerDegeneratesToSerial) {
  ConcurrencyRig rig;
  core::QueryResult serial;
  ASSERT_TRUE(rig.system->Query(rig.log.test[0], 10, &serial).ok());
  core::AggregateResult agg;
  std::vector<core::QueryResult> conc;
  const std::vector<std::vector<Scalar>> one{rig.log.test[0]};
  ASSERT_TRUE(
      rig.system->RunQueriesConcurrent(one, 10, 1, &agg, &conc).ok());
  ASSERT_EQ(conc.size(), 1u);
  EXPECT_EQ(conc[0].result_ids, serial.result_ids);
  EXPECT_EQ(agg.queries, 1u);
}

TEST(ConcurrencyTest, RejectsZeroThreadsAndAttachedTracer) {
  ConcurrencyRig rig;
  core::AggregateResult agg;
  EXPECT_FALSE(
      rig.system->RunQueriesConcurrent(rig.log.test, 10, 0, &agg).ok());
  obs::Tracer tracer(16);
  rig.system->SetTracer(&tracer);
  EXPECT_FALSE(
      rig.system->RunQueriesConcurrent(rig.log.test, 10, 2, &agg).ok());
  rig.system->SetTracer(nullptr);
  EXPECT_TRUE(
      rig.system->RunQueriesConcurrent(rig.log.test, 10, 2, &agg).ok());
}

TEST(ConcurrencyTest, QueriesStayExactWhileMaintenanceRebuildsCache) {
  ConcurrencyRig rig;
  const size_t k = 10;

  // Ground truth (caches never change results, whatever generation serves).
  std::vector<std::vector<PointId>> truth;
  core::QueryResult r;
  for (const auto& q : rig.log.test) {
    ASSERT_TRUE(rig.system->Query(q, k, &r).ok());
    truth.push_back(r.result_ids);
  }

  // A maintenance thread republishes the cache generation in a tight loop
  // while 8 workers hammer queries. Epoch publication means every query
  // reads one coherent generation; the histogram a probe decodes against
  // can never be mutated mid-flight.
  std::atomic<bool> stop{false};
  std::atomic<int> rebuilds{0};
  std::thread maintenance([&] {
    while (!stop.load()) {
      ASSERT_TRUE(rig.system->ReconfigureCache().ok());
      rebuilds.fetch_add(1);
    }
  });

  for (int round = 0; round < 3; ++round) {
    core::AggregateResult agg;
    std::vector<core::QueryResult> conc;
    ASSERT_TRUE(rig.system
                    ->RunQueriesConcurrent(rig.log.test, k, kThreads, &agg,
                                           &conc)
                    .ok());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(conc[i].result_ids, truth[i])
          << "round " << round << " query " << i;
    }
  }
  stop.store(true);
  maintenance.join();
  EXPECT_GT(rebuilds.load(), 0);
}

TEST(ConcurrencyTest, CacheSizeReadableWhileAdmitting) {
  // Regression for a size() data race: it used to read the id->slot map's
  // size without the cache mutex, racing concurrent Admit/evict rehashes
  // (TSan-visible). size() now reads an atomic mirror refreshed under the
  // lock, so a poller (the occupancy gauge path) can run against writers
  // and always sees a value within capacity.
  constexpr size_t kDim = 16;
  constexpr size_t kCapacityItems = 64;
  cache::ExactCache cache(kDim, kCapacityItems * kDim * sizeof(Scalar),
                          /*lru=*/true);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> polls{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_LE(cache.size(), kCapacityItems);
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&cache, t] {
      std::vector<Scalar> point(kDim, static_cast<Scalar>(t));
      for (uint32_t i = 0; i < 2000; ++i) {
        cache.Admit(static_cast<PointId>(t * 10000 + i), point);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  poller.join();
  EXPECT_GT(polls.load(), 0u);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_LE(cache.size(), kCapacityItems);
}

// ---- Open-loop serving (System::Serve) ------------------------------------

// Serial reference results for the rig's test log: the bit-exactness oracle
// every completed Serve query is checked against.
std::vector<core::QueryResult> SerialReference(ConcurrencyRig* rig, size_t k) {
  std::vector<core::QueryResult> serial(rig->log.test.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(rig->system->Query(rig->log.test[i], k, &serial[i]).ok());
  }
  return serial;
}

// The exact-reconciliation contract of one ServeReport: completed + shed ==
// submitted, the four causes sum to shed, and the per-query shed flags agree
// with the report. Shed queries must never have executed (no candidate
// funnel, no results); completed ones must match the serial reference unless
// `check_exact` is off (deadline runs legitimately degrade).
void ExpectServeReconciles(const core::ServeReport& report,
                           const std::vector<core::QueryResult>& per_query,
                           const std::vector<core::QueryResult>& serial,
                           bool check_exact) {
  EXPECT_EQ(report.submitted, per_query.size());
  EXPECT_EQ(report.completed + report.shed, report.submitted);
  EXPECT_EQ(report.shed_queue_full + report.shed_timeout +
                report.shed_expired + report.shed_brownout,
            report.shed);
  size_t flagged_shed = 0;
  for (size_t i = 0; i < per_query.size(); ++i) {
    const core::QueryResult& r = per_query[i];
    if (r.shed) {
      flagged_shed++;
      EXPECT_NE(r.shed_cause, obs::ShedCause::kNone) << "query " << i;
      EXPECT_TRUE(r.result_ids.empty()) << "query " << i;
      EXPECT_EQ(r.candidates, 0u) << "query " << i;
      EXPECT_EQ(r.fetched, 0u) << "query " << i;
    } else {
      EXPECT_EQ(r.shed_cause, obs::ShedCause::kNone) << "query " << i;
      if (check_exact) {
        EXPECT_EQ(r.result_ids, serial[i].result_ids) << "query " << i;
        EXPECT_EQ(r.candidates, serial[i].candidates) << "query " << i;
        EXPECT_EQ(r.cache_hits, serial[i].cache_hits) << "query " << i;
        EXPECT_EQ(r.substituted, 0u) << "query " << i;
      }
    }
  }
  EXPECT_EQ(flagged_shed, report.shed);
  EXPECT_EQ(report.agg.queries, report.completed);
}

TEST(ServeTest, BlockingServeIsBitExactWithRunQueriesConcurrent) {
  ConcurrencyRig rig;
  const size_t k = 10;
  const auto serial = SerialReference(&rig, k);

  // Default options: blocking admission, no deadline — the closed-loop
  // batch contract. Nothing may shed and every answer is exact.
  core::ServeOptions opt;
  opt.n_threads = kThreads;
  core::ServeReport report;
  std::vector<core::QueryResult> per_query;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.completed, rig.log.test.size());
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/true);

  // And the aggregate matches RunQueriesConcurrent bit for bit.
  core::AggregateResult conc;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, kThreads, &conc)
                  .ok());
  // CPU-time-bearing fields (avg_response_seconds) are excluded: only the
  // deterministic, I/O-derived aggregates are contractually bit-exact.
  EXPECT_EQ(report.agg.queries, conc.queries);
  EXPECT_DOUBLE_EQ(report.agg.avg_candidates, conc.avg_candidates);
  EXPECT_DOUBLE_EQ(report.agg.avg_fetched, conc.avg_fetched);
  EXPECT_DOUBLE_EQ(report.agg.avg_refine_pages, conc.avg_refine_pages);
  EXPECT_DOUBLE_EQ(report.agg.hit_ratio, conc.hit_ratio);
  EXPECT_DOUBLE_EQ(report.agg.prune_ratio, conc.prune_ratio);
}

TEST(ServeTest, ShedAdmissionReconcilesExactlyUnderEightThreads) {
  ConcurrencyRig rig;
  const size_t k = 10;
  const auto serial = SerialReference(&rig, k);

  // A one-slot queue under an open-loop producer that never waits: most
  // arrivals find the slot occupied. The invariant under test is exact
  // accounting — shed + completed == submitted with no query lost or
  // double-counted — not how many shed (that is scheduling-dependent).
  core::ServeOptions opt;
  opt.n_threads = kThreads;
  opt.queue_capacity = 1;
  opt.admission = core::AdmissionPolicy::kShed;
  core::ServeReport report;
  std::vector<core::QueryResult> per_query;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/true);
  EXPECT_GT(report.shed, 0u);
  EXPECT_EQ(report.shed_queue_full, report.shed);  // the only active cause
  for (const core::QueryResult& r : per_query) {
    if (r.shed) {
      EXPECT_EQ(r.shed_cause, obs::ShedCause::kQueueFull);
    }
  }
}

TEST(ServeTest, TimeoutAdmissionShedsWithTheTimeoutCause) {
  ConcurrencyRig rig;
  const size_t k = 10;
  const auto serial = SerialReference(&rig, k);

  core::ServeOptions opt;
  opt.n_threads = 2;
  opt.queue_capacity = 1;
  opt.admission = core::AdmissionPolicy::kTimeout;
  opt.admission_timeout_ms = 0.01;  // far below a query's service time
  core::ServeReport report;
  std::vector<core::QueryResult> per_query;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/true);
  EXPECT_GT(report.shed, 0u);
  EXPECT_EQ(report.shed_timeout, report.shed);
  for (const core::QueryResult& r : per_query) {
    if (r.shed) {
      EXPECT_EQ(r.shed_cause, obs::ShedCause::kQueueTimeout);
    }
  }
}

TEST(ServeTest, QueueWaitBurnsTheDeadlineAndExpiredQueriesNeverExecute) {
  ConcurrencyRig rig;
  const size_t k = 10;
  const auto serial = SerialReference(&rig, k);

  // One worker, a queue wide enough that admission never sheds, and an
  // end-to-end deadline far below the backlog's drain time: all but the
  // first few queries burn their whole budget waiting and must be shed on
  // dequeue — without touching the engine.
  core::ServeOptions opt;
  opt.n_threads = 1;
  opt.queue_capacity = rig.log.test.size();
  opt.admission = core::AdmissionPolicy::kBlock;
  opt.deadline_ms = 0.05;
  core::ServeReport report;
  std::vector<core::QueryResult> per_query;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  // Deadline-cut completions may degrade, so skip the bit-exact check; the
  // accounting contract still holds exactly.
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/false);
  EXPECT_EQ(report.shed_expired, report.shed);
  EXPECT_GE(report.shed_expired, rig.log.test.size() / 2);
  for (const core::QueryResult& r : per_query) {
    if (r.shed) {
      EXPECT_EQ(r.shed_cause, obs::ShedCause::kDeadlineExpired);
      // The wait that killed it is on the record.
      EXPECT_GE(r.queue_wait_ms, opt.deadline_ms);
    }
  }
}

TEST(ServeTest, BrownoutShedsAtAdmissionOnOpenLoopPoliciesOnly) {
  ConcurrencyRig rig;
  const size_t k = 10;
  const auto serial = SerialReference(&rig, k);

  // Force the monitor into SHEDDING with one saturated snapshot (occupancy
  // 1.0 >= the default shed fraction); no recovery evaluations follow, so
  // the state holds for the whole test.
  core::HealthMonitor health;
  obs::WindowSnapshot saturated;
  saturated.queue_depth = 100;
  saturated.queue_capacity = 100;
  ASSERT_EQ(health.Evaluate(saturated), core::HealthState::kShedding);
  rig.system->SetHealthMonitor(&health);

  // Open-loop admission: every arrival is dropped at the door with the
  // brownout cause — the queue is never even tried.
  core::ServeOptions opt;
  opt.n_threads = 2;
  opt.queue_capacity = rig.log.test.size();
  opt.admission = core::AdmissionPolicy::kShed;
  core::ServeReport report;
  std::vector<core::QueryResult> per_query;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/true);
  EXPECT_EQ(report.shed_brownout, report.submitted);
  EXPECT_EQ(report.completed, 0u);
  for (const core::QueryResult& r : per_query) {
    EXPECT_EQ(r.shed_cause, obs::ShedCause::kBrownout);
  }

  // Blocking admission is the closed-loop batch contract: the monitor must
  // not drop queries out of a batch even while shedding.
  opt.admission = core::AdmissionPolicy::kBlock;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  EXPECT_EQ(report.shed, 0u);
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/true);

  // Detached, the same open-loop options serve everything again.
  rig.system->SetHealthMonitor(nullptr);
  opt.admission = core::AdmissionPolicy::kShed;
  ASSERT_TRUE(
      rig.system->Serve(rig.log.test, k, opt, &report, &per_query).ok());
  EXPECT_EQ(report.shed, 0u);
  ExpectServeReconciles(report, per_query, serial, /*check_exact=*/true);
}

}  // namespace
}  // namespace eeb
