// Degenerate-input tests: datasets of identical points, single points, and
// oversized leaves exercise the fallback paths of the tree builders and the
// generic search.

#include <gtest/gtest.h>

#include <set>

#include "common/dataset.h"
#include "index/idistance/idistance.h"
#include "index/linear_scan.h"
#include "index/mtree/mtree.h"
#include "index/vptree/vptree.h"
#include "storage/mem_env.h"

namespace eeb::index {
namespace {

Dataset IdenticalPoints(size_t n, size_t dim, Scalar value) {
  Dataset d(dim);
  std::vector<Scalar> p(dim, value);
  for (size_t i = 0; i < n; ++i) d.Append(p);
  return d;
}

TEST(DegenerateTest, VpTreeAllIdenticalPoints) {
  storage::MemEnv env;
  Dataset data = IdenticalPoints(500, 8, 42);
  std::unique_ptr<VpTree> idx;
  ASSERT_TRUE(VpTree::Build(&env, "/vp", data, {}, &idx).ok());

  std::vector<Scalar> q(8, 42);
  TreeSearchResult res;
  ASSERT_TRUE(idx->Search(q, 10, nullptr, &res).ok());
  EXPECT_EQ(res.neighbors.size(), 10u);
  for (const auto& nb : res.neighbors) EXPECT_DOUBLE_EQ(nb.dist, 0.0);
}

TEST(DegenerateTest, MTreeAllIdenticalPoints) {
  storage::MemEnv env;
  Dataset data = IdenticalPoints(500, 8, 7);
  std::unique_ptr<MTree> idx;
  ASSERT_TRUE(MTree::Build(&env, "/mt", data, {}, &idx).ok());

  std::vector<Scalar> q(8, 7);
  TreeSearchResult res;
  ASSERT_TRUE(idx->Search(q, 5, nullptr, &res).ok());
  EXPECT_EQ(res.neighbors.size(), 5u);
}

TEST(DegenerateTest, IDistanceAllIdenticalPoints) {
  storage::MemEnv env;
  Dataset data = IdenticalPoints(300, 8, 100);
  IDistanceOptions opt;
  opt.num_partitions = 8;
  std::unique_ptr<IDistance> idx;
  ASSERT_TRUE(IDistance::Build(&env, "/id", data, opt, &idx).ok());

  std::vector<Scalar> q(8, 100);
  TreeSearchResult res;
  ASSERT_TRUE(idx->Search(q, 3, nullptr, &res).ok());
  EXPECT_EQ(res.neighbors.size(), 3u);
}

TEST(DegenerateTest, SinglePointDataset) {
  storage::MemEnv env;
  Dataset data = IdenticalPoints(1, 4, 1);
  std::unique_ptr<VpTree> vp;
  ASSERT_TRUE(VpTree::Build(&env, "/vp1", data, {}, &vp).ok());
  std::unique_ptr<MTree> mt;
  ASSERT_TRUE(MTree::Build(&env, "/mt1", data, {}, &mt).ok());

  std::vector<Scalar> q(4, 5);
  TreeSearchResult res;
  ASSERT_TRUE(vp->Search(q, 3, nullptr, &res).ok());
  EXPECT_EQ(res.neighbors.size(), 1u);  // only one point exists
  ASSERT_TRUE(mt->Search(q, 3, nullptr, &res).ok());
  EXPECT_EQ(res.neighbors.size(), 1u);
}

TEST(DegenerateTest, TwoDistinctValuesStillExact) {
  // Half the points at one location, half at another: splits are maximally
  // tie-heavy but results must stay exact.
  storage::MemEnv env;
  Dataset data(4);
  std::vector<Scalar> a(4, 10), b(4, 200);
  for (int i = 0; i < 100; ++i) data.Append(i % 2 == 0 ? a : b);

  std::unique_ptr<VpTree> vp;
  ASSERT_TRUE(VpTree::Build(&env, "/vp2", data, {}, &vp).ok());
  std::vector<Scalar> q(4, 12);
  TreeSearchResult res;
  ASSERT_TRUE(vp->Search(q, 10, nullptr, &res).ok());
  auto truth = LinearScanKnn(data, q, 10);
  std::multiset<double> got, want;
  for (const auto& nb : res.neighbors) got.insert(nb.dist);
  for (const auto& nb : truth) want.insert(nb.dist);
  EXPECT_EQ(got, want);
}

TEST(DegenerateTest, BuildersRejectEmptyDataset) {
  storage::MemEnv env;
  Dataset empty(8);
  std::unique_ptr<VpTree> vp;
  EXPECT_TRUE(VpTree::Build(&env, "/e1", empty, {}, &vp).IsInvalidArgument());
  std::unique_ptr<MTree> mt;
  EXPECT_TRUE(MTree::Build(&env, "/e2", empty, {}, &mt).IsInvalidArgument());
  std::unique_ptr<IDistance> id;
  EXPECT_TRUE(
      IDistance::Build(&env, "/e3", empty, {}, &id).IsInvalidArgument());
}

}  // namespace
}  // namespace eeb::index
