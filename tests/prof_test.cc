// Tests for the hierarchical phase profiler: scope nesting and path
// construction, total/self decomposition, reset/republish semantics, the
// null-profiler no-op contract, cross-thread accumulation into one tree,
// stale thread-local-cursor safety across Profiler lifetimes, the JSON
// export shape, and end-to-end System integration (the phases Algorithm 1
// is expected to record actually appear).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "workload/generator.h"

namespace eeb::obs {
namespace {

std::map<std::string, Profiler::PhaseStats> ByPath(const Profiler& p) {
  std::map<std::string, Profiler::PhaseStats> out;
  for (auto& s : p.Snapshot()) out[s.path] = s;
  return out;
}

void SpinFor(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(ProfilerTest, NestedScopesBuildSlashPaths) {
  Profiler prof;
  {
    ProfScope a(&prof, "outer");
    {
      ProfScope b(&prof, "inner");
      { ProfScope c(&prof, "leaf"); }
      { ProfScope c(&prof, "leaf"); }
    }
  }
  auto stats = ByPath(prof);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats.at("outer").calls, 1u);
  EXPECT_EQ(stats.at("outer/inner").calls, 1u);
  EXPECT_EQ(stats.at("outer/inner/leaf").calls, 2u);
}

TEST(ProfilerTest, SiblingScopesShareOneNodePerName) {
  Profiler prof;
  for (int i = 0; i < 5; ++i) {
    ProfScope a(&prof, "phase");
  }
  auto stats = ByPath(prof);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.at("phase").calls, 5u);
}

TEST(ProfilerTest, SamePhaseNameFromDifferentPointersUnifies) {
  Profiler prof;
  // Simulate two translation units naming the same phase: same content,
  // different char arrays (content comparison must unify them).
  const char a[] = "work";
  const char b[] = "work";
  ASSERT_NE(static_cast<const void*>(a), static_cast<const void*>(b));
  { ProfScope s(&prof, a); }
  { ProfScope s(&prof, b); }
  auto stats = ByPath(prof);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.at("work").calls, 2u);
}

TEST(ProfilerTest, SelfTimeExcludesChildren) {
  Profiler prof;
  {
    ProfScope a(&prof, "parent");
    SpinFor(std::chrono::microseconds(2000));
    {
      ProfScope b(&prof, "child");
      SpinFor(std::chrono::microseconds(2000));
    }
  }
  auto stats = ByPath(prof);
  const auto& parent = stats.at("parent");
  const auto& child = stats.at("parent/child");
  EXPECT_GE(parent.total_seconds, child.total_seconds);
  EXPECT_NEAR(parent.self_seconds,
              parent.total_seconds - child.total_seconds, 1e-9);
  EXPECT_GT(parent.self_seconds, 0.0);
  // Leaf self == leaf total.
  EXPECT_DOUBLE_EQ(child.self_seconds, child.total_seconds);
}

TEST(ProfilerTest, ResetZeroesCountersButKeepsPhases) {
  Profiler prof;
  { ProfScope s(&prof, "phase"); }
  prof.Reset();
  auto stats = ByPath(prof);
  ASSERT_EQ(stats.size(), 1u);  // structure survives (bench cells reuse it)
  EXPECT_EQ(stats.at("phase").calls, 0u);
  EXPECT_DOUBLE_EQ(stats.at("phase").total_seconds, 0.0);
  { ProfScope s(&prof, "phase"); }
  EXPECT_EQ(ByPath(prof).at("phase").calls, 1u);
}

TEST(ProfilerTest, NullProfilerScopesAreNoOps) {
  // Must not crash and must not leak state into a later real profiler.
  {
    ProfScope a(nullptr, "ghost");
    ProfScope b(nullptr, "ghost2");
  }
  Profiler prof;
  { ProfScope s(&prof, "real"); }
  auto stats = ByPath(prof);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.count("real"), 1u);
}

TEST(ProfilerTest, PublishToRegistryWritesGauges) {
  Profiler prof;
  {
    ProfScope a(&prof, "query");
    ProfScope b(&prof, "refine");
  }
  MetricsRegistry reg;
  prof.PublishTo(&reg);
  EXPECT_DOUBLE_EQ(reg.GetGauge("prof.query.calls")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("prof.query.refine.calls")->value(), 1.0);
  EXPECT_GE(reg.GetGauge("prof.query.total_seconds")->value(), 0.0);
  // Publish is idempotent per snapshot (Set, not Add).
  prof.PublishTo(&reg);
  EXPECT_DOUBLE_EQ(reg.GetGauge("prof.query.calls")->value(), 1.0);
  prof.PublishTo(nullptr);  // no-op, must not crash
}

TEST(ProfilerTest, ThreadsAccumulateIntoOneTreeWithPrivateNesting) {
  Profiler prof;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&prof] {
      for (int i = 0; i < kIters; ++i) {
        ProfScope a(&prof, "query");
        ProfScope b(&prof, "refine");
      }
    });
  }
  for (auto& t : threads) t.join();
  auto stats = ByPath(prof);
  ASSERT_EQ(stats.size(), 2u);  // nesting stayed per-thread: no stray roots
  EXPECT_EQ(stats.at("query").calls,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.at("query/refine").calls,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ProfilerTest, StaleThreadCursorFromDeadProfilerIsIgnored) {
  // A scope against profiler A leaves a thread-local cursor; after A dies, a
  // scope against profiler B on the same thread must root at B's top level,
  // not dereference A's freed node. The generation check covers address
  // reuse too (can't force reuse portably, but the dangling-generation path
  // is exactly the one exercised here).
  auto a = std::make_unique<Profiler>();
  {
    ProfScope s(a.get(), "old");
    // Destroy A while no scope is open is the contract; here we just record
    // once and drop A afterwards.
  }
  a.reset();
  Profiler b;
  { ProfScope s(&b, "fresh"); }
  auto stats = ByPath(b);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.count("fresh"), 1u);
}

TEST(ProfilerTest, ExportProfileJsonShape) {
  Profiler prof;
  {
    ProfScope a(&prof, "query");
    ProfScope b(&prof, "gen");
  }
  const std::string json = ExportProfileJson(prof);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"phases\":["), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"query/gen\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"self_seconds\":"), std::string::npos);
  // Balanced and terminated.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ------------------------------------------------- System integration ----

TEST(ProfilerSystemTest, PipelinePhasesAppearAndNestCorrectly) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_prof_system").string();
  std::filesystem::create_directories(dir);

  workload::DatasetSpec dspec;
  dspec.n = 3000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.clusters = 8;
  dspec.seed = 11;
  Dataset data = workload::GenerateClustered(dspec);

  workload::QueryLogSpec qspec;
  qspec.pool_size = 30;
  qspec.workload_size = 100;
  qspec.test_size = 10;
  workload::QueryLog log = workload::GenerateQueryLog(data, qspec);

  core::SystemOptions opt;
  opt.lsh.beta_candidates = 100;
  std::unique_ptr<core::System> system;
  ASSERT_TRUE(core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, opt, &system)
                  .ok());
  // Tiny cache so misses and refinement fetches occur.
  ASSERT_TRUE(system->ConfigureCache(core::CacheMethod::kHcO, 4096).ok());

  Profiler prof;
  system->SetProfiler(&prof);
  core::AggregateResult agg;
  ASSERT_TRUE(system->RunQueries(log.test, /*k=*/10, &agg).ok());

  auto stats = ByPath(prof);
  ASSERT_EQ(stats.count("run_queries"), 1u);
  ASSERT_EQ(stats.count("run_queries/query"), 1u);
  ASSERT_EQ(stats.count("run_queries/query/gen"), 1u);
  ASSERT_EQ(stats.count("run_queries/query/reduce"), 1u);
  ASSERT_EQ(stats.count("run_queries/query/reduce/cache_probes"), 1u);
  ASSERT_EQ(stats.count("run_queries/query/refine"), 1u);
  ASSERT_EQ(stats.count("run_queries/query/refine/read_point"), 1u);
  EXPECT_EQ(stats.at("run_queries").calls, 1u);
  EXPECT_EQ(stats.at("run_queries/query").calls, log.test.size());
  EXPECT_GT(stats.at("run_queries/query/refine/read_point").calls, 0u);
  // The query total covers its phases (allow slack for clock granularity).
  const double phases = stats.at("run_queries/query/gen").total_seconds +
                        stats.at("run_queries/query/reduce").total_seconds +
                        stats.at("run_queries/query/refine").total_seconds;
  EXPECT_GE(stats.at("run_queries/query").total_seconds, phases * 0.5);

  // Detach: further queries must not record.
  system->SetProfiler(nullptr);
  prof.Reset();
  ASSERT_TRUE(system->RunQueries(log.test, /*k=*/10, &agg).ok());
  EXPECT_EQ(ByPath(prof).at("run_queries").calls, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eeb::obs
