// Parameterized property sweeps (TEST_P): histogram invariants across
// builder x bucket-count x domain, point-file round trips across page sizes
// and dimensionalities, bound validity across code lengths, and engine
// exactness across cache-method x tau.

#include <gtest/gtest.h>

#include <filesystem>
#include <tuple>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "core/system.h"
#include "hist/bounds.h"
#include "hist/builders.h"
#include "storage/mem_env.h"
#include "workload/generator.h"

namespace eeb {
namespace {

// ------------------------------------------------ histogram builder sweep --

using BuilderParam = std::tuple<hist::BuilderKind, uint32_t /*ndom*/,
                                uint32_t /*buckets*/>;

class HistogramBuilderP : public ::testing::TestWithParam<BuilderParam> {};

TEST_P(HistogramBuilderP, CoversDomainAndLookupConsistent) {
  const auto [kind, ndom, buckets] = GetParam();
  Rng rng(static_cast<uint64_t>(ndom) * 31 + buckets);
  hist::FrequencyArray f(ndom);
  for (uint32_t x = 0; x < ndom; ++x) {
    if (rng.Bernoulli(0.6)) f.Add(x, 1.0 + rng.Uniform(30));
  }

  hist::Histogram h;
  Status st;
  switch (kind) {
    case hist::BuilderKind::kEquiWidth:
      st = hist::BuildEquiWidth(ndom, buckets, &h);
      break;
    case hist::BuilderKind::kEquiDepth:
      st = hist::BuildEquiDepth(f, buckets, &h);
      break;
    case hist::BuilderKind::kVOptimal:
      st = hist::BuildVOptimal(f, buckets, &h);
      break;
    case hist::BuilderKind::kKnnOptimal:
      st = hist::BuildKnnOptimal(f, buckets, &h);
      break;
  }
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Invariants: tiling, bounded bucket count, total lookup.
  EXPECT_LE(h.num_buckets(), buckets);
  EXPECT_GE(h.num_buckets(), 1u);
  EXPECT_EQ(h.buckets().front().lo, 0u);
  EXPECT_EQ(h.buckets().back().hi, ndom - 1);
  for (uint32_t v = 0; v < ndom; ++v) {
    const hist::Bucket& b = h.bucket(h.Lookup(v));
    EXPECT_GE(v, b.lo);
    EXPECT_LE(v, b.hi);
  }
  // Code length fits the bucket count.
  EXPECT_LE(h.num_buckets(), 1u << h.code_length());
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, HistogramBuilderP,
    ::testing::Combine(
        ::testing::Values(hist::BuilderKind::kEquiWidth,
                          hist::BuilderKind::kEquiDepth,
                          hist::BuilderKind::kVOptimal,
                          hist::BuilderKind::kKnnOptimal),
        ::testing::Values(16u, 64u, 256u),
        ::testing::Values(2u, 8u, 32u, 256u)));

// ---------------------------------------------------- point file sweep ----

using FileParam = std::tuple<size_t /*page*/, size_t /*dim*/, size_t /*n*/>;

class PointFileP : public ::testing::TestWithParam<FileParam> {};

TEST_P(PointFileP, RoundTripAndIoAccounting) {
  const auto [page, dim, n] = GetParam();
  Rng rng(page * 131 + dim);
  Dataset data(dim);
  std::vector<Scalar> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(1024));
    data.Append(p);
  }

  storage::MemEnv env;
  ASSERT_TRUE(storage::PointFile::Create(&env, "/pf", data, page).ok());
  std::unique_ptr<storage::PointFile> pf;
  ASSERT_TRUE(storage::PointFile::Open(&env, "/pf", &pf).ok());
  EXPECT_EQ(pf->page_size(), page);

  std::vector<Scalar> buf(dim);
  storage::IoStats stats;
  for (PointId id = 0; id < n; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, &stats, nullptr).ok());
    auto expect = data.point(id);
    for (size_t j = 0; j < dim; ++j) ASSERT_EQ(buf[j], expect[j]);
  }
  EXPECT_EQ(stats.point_reads, n);
  const size_t rec = dim * sizeof(Scalar);
  const size_t pages_per_point = rec <= page ? 1 : (rec + page - 1) / page;
  EXPECT_EQ(stats.page_reads, n * pages_per_point);
}

INSTANTIATE_TEST_SUITE_P(
    PagesDims, PointFileP,
    ::testing::Combine(::testing::Values(size_t{512}, size_t{4096},
                                         size_t{16384}),
                       ::testing::Values(size_t{4}, size_t{96}, size_t{960}),
                       ::testing::Values(size_t{33})));

// ------------------------------------------------------ bounds tau sweep --

class BoundsTauP : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BoundsTauP, SandwichHoldsForEveryTau) {
  const uint32_t tau = GetParam();
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(1024, 1u << tau, &h).ok());
  Rng rng(tau * 1234567);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t d = 1 + rng.Uniform(64);
    std::vector<Scalar> p(d), q(d);
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(1024));
    for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(1024));
    std::vector<BucketId> codes(d);
    cache::EncodeGlobal(h, p, codes);
    const double dist = L2(q, p);
    for (bool integral : {false, true}) {
      double lb, ub;
      hist::CodeBoundsGlobal(h, q, codes, &lb, &ub, integral);
      ASSERT_LE(lb, dist + 1e-9) << "tau=" << tau;
      ASSERT_GE(ub, dist - 1e-9) << "tau=" << tau;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, BoundsTauP,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u, 10u));

// ------------------------------------------ engine exactness method sweep --

using CellParam = std::tuple<core::CacheMethod, uint32_t /*tau*/>;

class EngineCellP : public ::testing::TestWithParam<CellParam> {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "eeb_param_sys")
               .string();
    std::filesystem::create_directories(dir_);
    workload::DatasetSpec dspec;
    dspec.n = 4000;
    dspec.dim = 24;
    dspec.ndom = 256;
    dspec.clusters = 8;
    dspec.seed = 99;
    data_ = new Dataset(workload::GenerateClustered(dspec));
    workload::QueryLogSpec qspec;
    qspec.pool_size = 40;
    qspec.workload_size = 120;
    qspec.test_size = 12;
    log_ = new workload::QueryLog(workload::GenerateQueryLog(*data_, qspec));

    core::SystemOptions opt;
    opt.lsh.beta_candidates = 120;
    std::unique_ptr<core::System> sys;
    ASSERT_TRUE(core::System::Create(storage::Env::Default(), dir_, *data_,
                                     log_->workload, opt, &sys)
                    .ok());
    system_ = sys.release();

    // Reference result ids without any cache.
    ASSERT_TRUE(system_->ConfigureCache(core::CacheMethod::kNone, 0).ok());
    reference_ = new std::vector<std::vector<PointId>>();
    for (const auto& q : log_->test) {
      core::QueryResult r;
      ASSERT_TRUE(system_->Query(q, 10, &r).ok());
      reference_->push_back(r.result_ids);
    }
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete system_;
    delete log_;
    delete data_;
    std::filesystem::remove_all(dir_);
  }

  static std::string dir_;
  static Dataset* data_;
  static workload::QueryLog* log_;
  static core::System* system_;
  static std::vector<std::vector<PointId>>* reference_;
};

std::string EngineCellP::dir_;
Dataset* EngineCellP::data_ = nullptr;
workload::QueryLog* EngineCellP::log_ = nullptr;
core::System* EngineCellP::system_ = nullptr;
std::vector<std::vector<PointId>>* EngineCellP::reference_ = nullptr;

TEST_P(EngineCellP, CachedResultsEqualReference) {
  const auto [method, tau] = GetParam();
  ASSERT_TRUE(system_->ConfigureCache(method, 60000, tau).ok());
  for (size_t i = 0; i < log_->test.size(); ++i) {
    core::QueryResult r;
    ASSERT_TRUE(system_->Query(log_->test[i], 10, &r).ok());
    EXPECT_EQ(r.result_ids, (*reference_)[i])
        << core::CacheMethodName(method) << " tau=" << tau << " query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByTau, EngineCellP,
    ::testing::Combine(
        ::testing::Values(core::CacheMethod::kExact, core::CacheMethod::kHcW,
                          core::CacheMethod::kHcV, core::CacheMethod::kHcM,
                          core::CacheMethod::kHcD,
                          core::CacheMethod::kHcO, core::CacheMethod::kIHcO,
                          core::CacheMethod::kMHcR, core::CacheMethod::kCVa),
        ::testing::Values(2u, 5u, 8u)));

}  // namespace
}  // namespace eeb
