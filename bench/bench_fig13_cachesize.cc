// Paper Fig. 13: average response time vs cache size CS on all three
// datasets, for NO-CACHE, EXACT, C-VA, HC-W, HC-D and HC-O.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 13", "response time vs cache size");

  const size_t k = 10;
  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"EXACT", core::CacheMethod::kExact}, {"C-VA", core::CacheMethod::kCVa},
      {"HC-W", core::CacheMethod::kHcW},    {"HC-D", core::CacheMethod::kHcD},
      {"HC-O", core::CacheMethod::kHcO},
  };

  for (const auto& spec : workload::AllSpecs()) {
    auto wb = bench::MakeWorkbench(spec);
    const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);

    const auto none = bench::RunCell(*wb, core::CacheMethod::kNone, 0, k);
    std::printf("\n[%s]  NO-CACHE: %.3f s\n", spec.name.c_str(),
                none.avg_response_seconds);
    std::printf("%-10s", "CS/file");
    for (const Row& row : rows) std::printf(" %9s", row.name);
    std::printf("\n");
    for (double frac : {0.02, 0.05, 0.08, 0.12, 0.18, 0.25, 0.33}) {
      const size_t cs = static_cast<size_t>(file_bytes * frac);
      std::printf("%-10.2f", frac);
      for (const Row& row : rows) {
        const auto agg = bench::RunCell(*wb, row.method, cs, k);
        std::printf(" %9.3f", agg.avg_response_seconds);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: all caching methods improve with CS; the histogram "
      "caches dominate\nEXACT at every size and approach their best well "
      "before CS reaches 1/3 of the\nfile; HC-O is the best throughout.\n");
  return 0;
}
