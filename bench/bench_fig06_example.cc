// Paper Fig. 6: the worked 1-dimensional example comparing equi-width,
// equi-depth / V-optimal, and the kNN-optimal histogram on the dataset
// {3,4,10,12,22,24,30,31} with workload WL = {q = 17}, k = 2, B = 4.
// The ideal histogram leaves zero remaining candidates.

#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"
#include "hist/bounds.h"
#include "hist/builders.h"

namespace {

using namespace eeb;

constexpr uint32_t kNdom = 32;
const std::vector<Scalar> kValues = {3, 4, 10, 12, 22, 24, 30, 31};
constexpr double kQuery = 17.0;
constexpr size_t kK = 2;

// Runs the candidate-reduction phase of Algorithm 1 on the 1-d example and
// returns the number of candidates that still need refinement.
size_t RemainingCandidates(const hist::Histogram& h) {
  struct Cand {
    double lb, ub;
  };
  std::vector<Cand> cands;
  for (Scalar v : kValues) {
    const hist::Bucket& b = h.bucket(h.Lookup(static_cast<uint32_t>(v)));
    const double lb = std::sqrt(hist::LowerTerm(kQuery, b.lo, b.hi));
    const double ub = std::sqrt(hist::UpperTerm(kQuery, b.lo, b.hi));
    cands.push_back({lb, ub});
  }
  std::vector<double> lbs, ubs;
  for (const auto& c : cands) {
    lbs.push_back(c.lb);
    ubs.push_back(c.ub);
  }
  std::nth_element(lbs.begin(), lbs.begin() + (kK - 1), lbs.end());
  std::nth_element(ubs.begin(), ubs.begin() + (kK - 1), ubs.end());
  const double lbk = lbs[kK - 1];
  const double ubk = ubs[kK - 1];
  size_t remaining = 0;
  for (const auto& c : cands) {
    const bool pruned = c.lb > ubk;
    const bool sure = c.ub < lbk;
    if (!pruned && !sure) ++remaining;
  }
  return remaining;
}

void Show(const char* name, const hist::Histogram& h) {
  std::printf("%-12s buckets:", name);
  for (const auto& b : h.buckets()) std::printf(" [%u..%u]", b.lo, b.hi);
  std::printf("  -> remaining candidates: %zu\n", RemainingCandidates(h));
}

}  // namespace

int main() {
  bench::Banner("Figure 6", "worked 1-d example: histogram effectiveness");

  hist::FrequencyArray fdata(kNdom);
  for (Scalar v : kValues) fdata.Add(static_cast<uint32_t>(v));

  // F' for WL = {q}: the k nearest data values to q (12 and 22).
  hist::FrequencyArray fprime(kNdom);
  std::vector<std::pair<double, Scalar>> by_dist;
  for (Scalar v : kValues) by_dist.push_back({std::fabs(v - kQuery), v});
  std::sort(by_dist.begin(), by_dist.end());
  for (size_t r = 0; r < kK; ++r) {
    fprime.Add(static_cast<uint32_t>(by_dist[r].second));
  }

  hist::Histogram hw, hd, hv, ho;
  bench::Check(hist::BuildEquiWidth(kNdom, 4, &hw), "equi-width");
  bench::Check(hist::BuildEquiDepth(fdata, 4, &hd), "equi-depth");
  bench::Check(hist::BuildVOptimal(fdata, 4, &hv), "v-optimal");
  bench::Check(hist::BuildKnnOptimal(fprime, 4, &ho), "knn-optimal");

  std::printf("dataset {3,4,10,12,22,24,30,31}, WL={q=17}, k=2, B=4\n\n");
  Show("Equi-width", hw);
  Show("Equi-depth", hd);
  Show("V-optimal", hv);
  Show("kNN-optimal", ho);
  std::printf(
      "\nPaper shape: equi-width leaves the most candidates (6), equi-depth/"
      "V-optimal fewer (4),\nand the kNN-optimal histogram (tight buckets "
      "near q) the least — only the k=2 true\nresults themselves. (The "
      "paper's 'ideal 0' additionally counts those two as detected\nvia a "
      "non-strict ub <= lbk test, which is unsafe under distance ties; we "
      "use the\nstrict test of Algorithm 1.)\n");
  return 0;
}
