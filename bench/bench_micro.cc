// Micro-benchmarks (google-benchmark) for the hot kernels: code packing and
// decoding, distance-bound evaluation, histogram lookup, Euclidean distance,
// and histogram construction. These are the operations the candidate-
// reduction phase performs per candidate, so their throughput bounds how
// cheap "no-I/O pruning" really is.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <vector>

#include "cache/code_store.h"
#include "cache/code_cache.h"
#include "common/dataset.h"
#include "common/distance.h"
#include "common/random.h"
#include "core/knn_engine.h"
#include "hist/bounds.h"
#include "hist/builders.h"
#include "index/lsh/c2lsh.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "storage/file_ordering.h"
#include "storage/point_file.h"

namespace {

using namespace eeb;

std::vector<Scalar> RandomPoint(Rng& rng, size_t d, uint32_t ndom) {
  std::vector<Scalar> p(d);
  for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(ndom));
  return p;
}

void BM_PackCodes(benchmark::State& state) {
  const size_t d = state.range(0);
  const uint32_t tau = state.range(1);
  cache::CodeStore store(d, tau);
  const uint32_t slot = store.AllocateSlot();
  Rng rng(1);
  std::vector<BucketId> codes(d);
  for (auto& c : codes) {
    c = static_cast<BucketId>(rng.Uniform(1u << tau));
  }
  for (auto _ : state) {
    store.Write(slot, codes);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_PackCodes)->Args({64, 4})->Args({64, 8})->Args({128, 8})
    ->Args({960, 10});

void BM_UnpackCodes(benchmark::State& state) {
  const size_t d = state.range(0);
  const uint32_t tau = state.range(1);
  cache::CodeStore store(d, tau);
  const uint32_t slot = store.AllocateSlot();
  Rng rng(2);
  std::vector<BucketId> codes(d), out(d);
  for (auto& c : codes) {
    c = static_cast<BucketId>(rng.Uniform(1u << tau));
  }
  store.Write(slot, codes);
  for (auto _ : state) {
    store.Read(slot, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_UnpackCodes)->Args({64, 4})->Args({64, 8})->Args({128, 8})
    ->Args({960, 10});

void BM_CodeBounds(benchmark::State& state) {
  const size_t d = state.range(0);
  const uint32_t buckets = state.range(1);
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, buckets, &h);
  Rng rng(3);
  const auto q = RandomPoint(rng, d, 256);
  const auto p = RandomPoint(rng, d, 256);
  std::vector<BucketId> codes(d);
  cache::EncodeGlobal(h, p, codes);
  double lb, ub;
  for (auto _ : state) {
    hist::CodeBoundsGlobal(h, q, codes, &lb, &ub);
    benchmark::DoNotOptimize(lb);
    benchmark::DoNotOptimize(ub);
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_CodeBounds)->Args({64, 16})->Args({64, 256})->Args({128, 256})
    ->Args({960, 1024});

void BM_ExactDistance(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(4);
  const auto q = RandomPoint(rng, d, 256);
  const auto p = RandomPoint(rng, d, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2(q, p));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_ExactDistance)->Arg(64)->Arg(128)->Arg(960);

void BM_HistogramLookup(benchmark::State& state) {
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, state.range(0), &h);
  Rng rng(5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Lookup(v));
    v = (v + 97) & 255;
  }
}
BENCHMARK(BM_HistogramLookup)->Arg(16)->Arg(256);

void BM_EncodePoint(benchmark::State& state) {
  const size_t d = state.range(0);
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, 256, &h);
  Rng rng(6);
  const auto p = RandomPoint(rng, d, 256);
  std::vector<BucketId> codes(d);
  for (auto _ : state) {
    cache::EncodeGlobal(h, p, codes);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_EncodePoint)->Arg(64)->Arg(960);

void BM_BuildKnnOptimal(benchmark::State& state) {
  const uint32_t ndom = state.range(0);
  const uint32_t buckets = state.range(1);
  Rng rng(7);
  hist::FrequencyArray f(ndom);
  for (uint32_t x = 0; x < ndom; ++x) {
    if (rng.Bernoulli(0.4)) f.Add(x, 1.0 + rng.Uniform(40));
  }
  for (auto _ : state) {
    hist::Histogram h;
    (void)hist::BuildKnnOptimal(f, buckets, &h);
    benchmark::DoNotOptimize(h.num_buckets());
  }
}
BENCHMARK(BM_BuildKnnOptimal)->Args({256, 16})->Args({256, 256})
    ->Args({1024, 64});

// --- observability overhead -------------------------------------------------
// The acceptance bar for the obs subsystem: one bound counter add / one
// histogram record must be a handful of ns, and an instrumented cache probe
// must stay within a few percent of the uninstrumented one.

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  benchmark::DoNotOptimize(c->value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram* h = reg.GetHistogram("bench.hist");
  double v = 1e-6;
  for (auto _ : state) {
    h->Record(v);
    v = v < 1.0 ? v * 1.001 : 1e-6;
  }
  benchmark::DoNotOptimize(h->count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

// Arg(0): plain probe; Arg(1): probe with bound instruments. Compare the
// two rows to verify the <=5% instrumented-overhead criterion.
void BM_CacheProbe(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  const size_t d = 64;
  const size_t n = 4096;
  Rng rng(9);
  Dataset data(d);
  for (size_t i = 0; i < n; ++i) data.Append(RandomPoint(rng, d, 256));
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, 256, &h);
  cache::HistCodeCache cache(&h, d, /*capacity_bytes=*/1 << 22,
                             /*lru=*/false, /*integral_values=*/true);
  std::vector<PointId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<PointId>(i);
  if (!cache.Fill(data, ids).ok()) {
    state.SkipWithError("cache fill failed");
    return;
  }
  obs::MetricsRegistry reg;
  if (instrumented) cache.BindMetrics(&reg);

  const auto q = RandomPoint(rng, d, 256);
  double lb, ub;
  PointId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Probe(q, id, &lb, &ub));
    benchmark::DoNotOptimize(lb);
    id = (id + 257) & (n - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbe)->Arg(0)->Arg(1);

// Arg(0): uninstrumented seed path; Arg(1): full metrics binding (engine +
// cache + LSH + point file; tracer stays off, matching production metrics
// collection); Arg(2): metrics plus the hierarchical phase profiler, the
// configuration eeb_bench runs with. The acceptance criterion compares
// whole-query CPU, where the once-per-query instrument updates are
// amortized over hundreds of per-candidate operations.
void BM_EngineQuery(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  const bool profiled = state.range(0) >= 2;
  const size_t d = 32;
  const size_t n = 2000;
  Rng rng(10);
  Dataset data(d);
  for (size_t i = 0; i < n; ++i) data.Append(RandomPoint(rng, d, 256));

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("eeb_micro_" + std::to_string(getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/points.eeb";
  storage::Env* env = storage::Env::Default();
  std::unique_ptr<storage::PointFile> points;
  if (!storage::PointFile::Create(env, path, data,
                                  storage::RawOrder(data.size()), 4096)
           .ok() ||
      !storage::PointFile::Open(env, path, &points).ok()) {
    state.SkipWithError("point file setup failed");
    return;
  }
  std::unique_ptr<index::C2Lsh> lsh;
  if (!index::C2Lsh::Build(data, index::C2LshOptions{}, &lsh).ok()) {
    state.SkipWithError("lsh build failed");
    return;
  }
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, 256, &h);
  cache::HistCodeCache cache(&h, d, /*capacity_bytes=*/1 << 16,
                             /*lru=*/false, /*integral_values=*/true);
  std::vector<PointId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<PointId>(i);
  if (!cache.Fill(data, ids).ok()) {
    state.SkipWithError("cache fill failed");
    return;
  }
  core::KnnEngine engine(lsh.get(), points.get(), &cache);
  obs::MetricsRegistry reg;
  obs::Profiler prof;
  if (instrumented) {
    engine.BindMetrics(&reg);
    cache.BindMetrics(&reg);
    lsh->BindMetrics(&reg);
    points->BindMetrics(&reg);
  }
  if (profiled) {
    engine.set_profiler(&prof);
    points->BindProfiler(&prof);
  }

  std::vector<std::vector<Scalar>> queries;
  for (size_t i = 0; i < 16; ++i) queries.push_back(RandomPoint(rng, d, 256));
  size_t qi = 0;
  for (auto _ : state) {
    core::QueryResult out;
    if (!engine.Query(queries[qi], /*k=*/10, &out).ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(out.result_ids.data());
    qi = (qi + 1) & 15;
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_EngineQuery)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildVOptimal(benchmark::State& state) {
  const uint32_t ndom = state.range(0);
  const uint32_t buckets = state.range(1);
  Rng rng(8);
  hist::FrequencyArray f(ndom);
  for (uint32_t x = 0; x < ndom; ++x) f.Add(x, 1.0 + rng.Uniform(40));
  for (auto _ : state) {
    hist::Histogram h;
    (void)hist::BuildVOptimal(f, buckets, &h);
    benchmark::DoNotOptimize(h.num_buckets());
  }
}
BENCHMARK(BM_BuildVOptimal)->Args({256, 16})->Args({256, 256});

}  // namespace

BENCHMARK_MAIN();
