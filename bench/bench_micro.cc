// Micro-benchmarks (google-benchmark) for the hot kernels: code packing and
// decoding, distance-bound evaluation, histogram lookup, Euclidean distance,
// and histogram construction. These are the operations the candidate-
// reduction phase performs per candidate, so their throughput bounds how
// cheap "no-I/O pruning" really is.

#include <benchmark/benchmark.h>

#include <vector>

#include "cache/code_store.h"
#include "cache/code_cache.h"
#include "common/distance.h"
#include "common/random.h"
#include "hist/bounds.h"
#include "hist/builders.h"

namespace {

using namespace eeb;

std::vector<Scalar> RandomPoint(Rng& rng, size_t d, uint32_t ndom) {
  std::vector<Scalar> p(d);
  for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(ndom));
  return p;
}

void BM_PackCodes(benchmark::State& state) {
  const size_t d = state.range(0);
  const uint32_t tau = state.range(1);
  cache::CodeStore store(d, tau);
  const uint32_t slot = store.AllocateSlot();
  Rng rng(1);
  std::vector<BucketId> codes(d);
  for (auto& c : codes) {
    c = static_cast<BucketId>(rng.Uniform(1u << tau));
  }
  for (auto _ : state) {
    store.Write(slot, codes);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_PackCodes)->Args({64, 4})->Args({64, 8})->Args({128, 8})
    ->Args({960, 10});

void BM_UnpackCodes(benchmark::State& state) {
  const size_t d = state.range(0);
  const uint32_t tau = state.range(1);
  cache::CodeStore store(d, tau);
  const uint32_t slot = store.AllocateSlot();
  Rng rng(2);
  std::vector<BucketId> codes(d), out(d);
  for (auto& c : codes) {
    c = static_cast<BucketId>(rng.Uniform(1u << tau));
  }
  store.Write(slot, codes);
  for (auto _ : state) {
    store.Read(slot, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_UnpackCodes)->Args({64, 4})->Args({64, 8})->Args({128, 8})
    ->Args({960, 10});

void BM_CodeBounds(benchmark::State& state) {
  const size_t d = state.range(0);
  const uint32_t buckets = state.range(1);
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, buckets, &h);
  Rng rng(3);
  const auto q = RandomPoint(rng, d, 256);
  const auto p = RandomPoint(rng, d, 256);
  std::vector<BucketId> codes(d);
  cache::EncodeGlobal(h, p, codes);
  double lb, ub;
  for (auto _ : state) {
    hist::CodeBoundsGlobal(h, q, codes, &lb, &ub);
    benchmark::DoNotOptimize(lb);
    benchmark::DoNotOptimize(ub);
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_CodeBounds)->Args({64, 16})->Args({64, 256})->Args({128, 256})
    ->Args({960, 1024});

void BM_ExactDistance(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(4);
  const auto q = RandomPoint(rng, d, 256);
  const auto p = RandomPoint(rng, d, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2(q, p));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_ExactDistance)->Arg(64)->Arg(128)->Arg(960);

void BM_HistogramLookup(benchmark::State& state) {
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, state.range(0), &h);
  Rng rng(5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Lookup(v));
    v = (v + 97) & 255;
  }
}
BENCHMARK(BM_HistogramLookup)->Arg(16)->Arg(256);

void BM_EncodePoint(benchmark::State& state) {
  const size_t d = state.range(0);
  hist::Histogram h;
  (void)hist::BuildEquiWidth(256, 256, &h);
  Rng rng(6);
  const auto p = RandomPoint(rng, d, 256);
  std::vector<BucketId> codes(d);
  for (auto _ : state) {
    cache::EncodeGlobal(h, p, codes);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_EncodePoint)->Arg(64)->Arg(960);

void BM_BuildKnnOptimal(benchmark::State& state) {
  const uint32_t ndom = state.range(0);
  const uint32_t buckets = state.range(1);
  Rng rng(7);
  hist::FrequencyArray f(ndom);
  for (uint32_t x = 0; x < ndom; ++x) {
    if (rng.Bernoulli(0.4)) f.Add(x, 1.0 + rng.Uniform(40));
  }
  for (auto _ : state) {
    hist::Histogram h;
    (void)hist::BuildKnnOptimal(f, buckets, &h);
    benchmark::DoNotOptimize(h.num_buckets());
  }
}
BENCHMARK(BM_BuildKnnOptimal)->Args({256, 16})->Args({256, 256})
    ->Args({1024, 64});

void BM_BuildVOptimal(benchmark::State& state) {
  const uint32_t ndom = state.range(0);
  const uint32_t buckets = state.range(1);
  Rng rng(8);
  hist::FrequencyArray f(ndom);
  for (uint32_t x = 0; x < ndom; ++x) f.Add(x, 1.0 + rng.Uniform(40));
  for (auto _ : state) {
    hist::Histogram h;
    (void)hist::BuildVOptimal(f, buckets, &h);
    benchmark::DoNotOptimize(h.num_buckets());
  }
}
BENCHMARK(BM_BuildVOptimal)->Args({256, 16})->Args({256, 256});

}  // namespace

BENCHMARK_MAIN();
