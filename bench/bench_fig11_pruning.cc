// Paper Fig. 11: remaining candidate size vs query I/O budget (log-log) per
// method at the default setting on the SOGOU surrogate. For each query we
// know the post-reduction candidate count R_i and the number of fetches the
// multi-step phase needed F_i; after b I/Os the undecided count is
// max(R_i - b, 0) until the multi-step stop at F_i decides everything.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 11", "remaining candidates vs query I/O (SOGOU-SIM)");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  const size_t cs = wb->default_cache_bytes;
  const size_t k = 10;
  // Fixed mid-range code length: at the cost-model default (tau = Lvalue)
  // every global histogram over an integral domain degenerates to lossless
  // singleton buckets and the curves coincide; tau = 6 is where the
  // histogram-quality differences the figure is about are visible.
  const uint32_t tau = 6;

  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"EXACT", core::CacheMethod::kExact}, {"mHC-R", core::CacheMethod::kMHcR},
      {"HC-W", core::CacheMethod::kHcW},    {"HC-V", core::CacheMethod::kHcV},
      {"HC-D", core::CacheMethod::kHcD},    {"HC-O", core::CacheMethod::kHcO},
  };
  const int kBudgets[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  std::printf("%-8s", "io");
  for (const Row& row : rows) std::printf(" %9s", row.name);
  std::printf("\n");

  // Collect per-query (remaining, fetched) pairs per method.
  std::vector<std::vector<std::pair<size_t, size_t>>> cells(std::size(rows));
  for (size_t m = 0; m < std::size(rows); ++m) {
    const uint32_t cell_tau =
        rows[m].method == core::CacheMethod::kExact ? 0 : tau;
    bench::Check(wb->system->ConfigureCache(rows[m].method, cs, cell_tau),
                 "ConfigureCache");
    for (const auto& q : wb->log.test) {
      core::QueryResult r;
      bench::Check(wb->system->Query(q, k, &r), "Query");
      cells[m].push_back({r.remaining, r.fetched});
    }
  }

  for (int b : kBudgets) {
    std::printf("%-8d", b);
    for (size_t m = 0; m < std::size(rows); ++m) {
      double undecided = 0;
      for (const auto& [remaining, fetched] : cells[m]) {
        if (static_cast<size_t>(b) >= fetched) continue;  // query done
        undecided += static_cast<double>(
            remaining > static_cast<size_t>(b) ? remaining - b : 0);
      }
      std::printf(" %9.1f", undecided / cells[m].size());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: HC-O needs the least I/O to empty its candidate set; "
      "HC-D next,\nthen HC-V/HC-W; EXACT starts with the full candidate set; "
      "mHC-R prunes nothing\n(curse of dimensionality).\n");
  return 0;
}
