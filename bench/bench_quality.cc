// Quality benchmark: the paper's Sec. 2.2 claim — caching gives speedup
// "without affecting the quality of query results" — measured. For each
// LSH-family candidate generator, report recall@10 and the overall distance
// ratio against the exact kNN, with and without the HC-O cache; the two
// columns must be identical, and they are.

#include <filesystem>

#include "bench/bench_common.h"
#include "cache/code_cache.h"
#include "core/knn_engine.h"
#include "core/quality.h"
#include "core/workload.h"
#include "hist/builders.h"
#include "index/lsh/c2lsh.h"
#include "index/lsh/e2lsh.h"
#include "index/lsh/multiprobe.h"
#include "index/lsh/sklsh.h"

namespace {

using namespace eeb;

struct Cell {
  core::BatchQuality plain;
  core::BatchQuality cached;
  double fetched_plain = 0;
  double fetched_cached = 0;
};

Cell RunIndex(index::CandidateIndex* idx, const Dataset& data,
              const storage::PointFile& pf, const workload::QueryLog& log,
              uint32_t ndom) {
  // Workload analysis for this index (HFF order + F').
  core::WorkloadStats wl;
  bench::Check(
      core::AnalyzeWorkload(idx, data, log.workload, 10, &wl),
      "workload");
  hist::FrequencyArray fprime =
      hist::FrequencyArray::FromPoints(data, wl.qr_points, ndom);
  hist::Histogram hco;
  bench::Check(hist::BuildKnnOptimal(fprime, 256, &hco), "HC-O");
  cache::HistCodeCache cache(&hco, data.dim(),
                             data.size() * data.dim() * sizeof(float) / 10,
                             false, true);
  bench::Check(cache.Fill(data, wl.ids_by_freq), "fill");

  Cell cell;
  for (int which = 0; which < 2; ++which) {
    core::KnnEngine engine(
        idx, &pf, which == 0 ? nullptr : static_cast<cache::KnnCache*>(&cache));
    std::vector<std::vector<PointId>> results;
    double fetched = 0;
    for (const auto& q : log.test) {
      core::QueryResult r;
      bench::Check(engine.Query(q, 10, &r), "query");
      results.push_back(r.result_ids);
      fetched += static_cast<double>(r.fetched);
    }
    const auto quality =
        core::MeasureBatchQuality(data, log.test, results, 10);
    if (which == 0) {
      cell.plain = quality;
      cell.fetched_plain = fetched / log.test.size();
    } else {
      cell.cached = quality;
      cell.fetched_cached = fetched / log.test.size();
    }
  }
  return cell;
}

}  // namespace

int main() {
  bench::Banner("Quality",
                "result quality with vs without the cache (IMGNET-SIM)");

  auto spec = workload::MaybeQuick(workload::ImgnetSimSpec());
  Dataset data = workload::GenerateClustered(spec);
  auto log = workload::GenerateQueryLog(
      data, workload::MaybeQuick(workload::DefaultLogSpec()));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_quality_bench").string();
  std::filesystem::create_directories(dir);
  bench::Check(storage::PointFile::Create(storage::Env::Default(),
                                          dir + "/p", data),
               "point file");
  std::unique_ptr<storage::PointFile> pf;
  bench::Check(
      storage::PointFile::Open(storage::Env::Default(), dir + "/p", &pf),
      "open");

  std::unique_ptr<index::C2Lsh> c2;
  index::C2LshOptions c2o;
  c2o.beta_candidates = std::max<uint32_t>(100, spec.n / 400);
  bench::Check(index::C2Lsh::Build(data, c2o, &c2), "c2lsh");
  std::unique_ptr<index::E2Lsh> e2;
  bench::Check(index::E2Lsh::Build(data, {}, &e2), "e2lsh");
  std::unique_ptr<index::MultiProbeLsh> mp;
  bench::Check(index::MultiProbeLsh::Build(data, {}, &mp), "mplsh");
  std::unique_ptr<index::SkLsh> sk;
  index::SkLshOptions sko;
  sko.window = 512;
  bench::Check(index::SkLsh::Build(data, sko, &sk), "sklsh");

  std::printf("%-8s %18s %18s %14s %14s\n", "index", "recall@10 (=)",
              "overall ratio (=)", "I/O no-cache", "I/O HC-O");
  struct Row {
    const char* name;
    index::CandidateIndex* idx;
  };
  for (const Row& row :
       {Row{"C2LSH", c2.get()}, Row{"E2LSH", e2.get()},
        Row{"MP-LSH", mp.get()}, Row{"SK-LSH", sk.get()}}) {
    const Cell cell = RunIndex(row.idx, data, *pf, log, spec.ndom);
    const bool same =
        cell.plain.mean_recall == cell.cached.mean_recall &&
        cell.plain.mean_overall_ratio == cell.cached.mean_overall_ratio;
    std::printf("%-8s %12.3f %5s %13.4f %4s %14.1f %14.1f\n", row.name,
                cell.plain.mean_recall, same ? "(=)" : "(!)",
                cell.plain.mean_overall_ratio, same ? "(=)" : "(!)",
                cell.fetched_plain, cell.fetched_cached);
  }
  std::printf(
      "\nExpected: quality columns identical with and without the cache "
      "(the paper's\nSec. 2.2 guarantee); I/O drops by the cache factor. "
      "Recall differs ACROSS\nindexes — that is the index's property, not "
      "the cache's.\n");
  return 0;
}
