// Paper Fig. 1: average response time of C2LSH without any cache, split
// into candidate generation vs candidate refinement, on the three datasets.
// The paper's point: refinement dominates, motivating the cache.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 1", "C2LSH response-time breakdown (NO-CACHE)");

  std::printf("%-12s %10s %12s %12s %8s\n", "dataset", "total(s)", "gen(s)",
              "refine(s)", "refine%");
  for (const auto& spec : workload::AllSpecs()) {
    auto wb = bench::MakeWorkbench(spec);
    const auto agg =
        bench::RunCell(*wb, core::CacheMethod::kNone, 0, /*k=*/10);
    const double total = agg.avg_response_seconds;
    std::printf("%-12s %10.3f %12.3f %12.3f %7.1f%%\n", spec.name.c_str(),
                total, agg.avg_gen_seconds, agg.avg_refine_seconds,
                100.0 * agg.avg_refine_seconds / total);
  }
  std::printf(
      "\nPaper shape: candidate refinement is the bottleneck (~60-90%% of\n"
      "the response time) and grows with dataset size.\n");
  return 0;
}
