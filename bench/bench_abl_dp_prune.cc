// Ablation (DESIGN.md): the Lemma-3 monotonicity pruning inside the
// kNN-optimal DP (Algorithm 2). Sweeps the domain size and reports inner-
// loop iterations and build time with and without the pruning; both runs
// must produce the same metric value.

#include <cmath>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "hist/builders.h"

int main() {
  using namespace eeb;
  bench::Banner("Ablation", "Lemma-3 pruning inside Algorithm 2");

  std::printf("%-8s %6s %14s %14s %9s %12s %12s\n", "Ndom", "B",
              "iters(prune)", "iters(full)", "speedup", "t(prune)ms",
              "t(full)ms");
  for (uint32_t ndom : {64u, 128u, 256u, 512u, 1024u}) {
    const uint32_t buckets = ndom / 16;
    // Concentrated F' (realistic workloads are concentrated) plus noise.
    Rng rng(ndom);
    hist::FrequencyArray f(ndom);
    for (uint32_t x = ndom / 3; x < ndom / 3 + ndom / 10; ++x) {
      f.Add(x, 50.0 + rng.Uniform(100));
    }
    for (uint32_t x = 0; x < ndom; ++x) {
      if (rng.Bernoulli(0.2)) f.Add(x, 1.0 + rng.Uniform(5));
    }

    hist::Histogram hp, hf;
    hist::DpStats sp, sf;
    Timer t;
    bench::Check(hist::BuildKnnOptimal(f, buckets, &hp, &sp, true),
                 "pruned build");
    const double tp = t.ElapsedMillis();
    t.Start();
    bench::Check(hist::BuildKnnOptimal(f, buckets, &hf, &sf, false),
                 "full build");
    const double tf = t.ElapsedMillis();

    const double mp = hist::MetricM3(hp, f);
    const double mf = hist::MetricM3(hf, f);
    if (std::fabs(mp - mf) > 1e-6 * (1 + std::fabs(mf))) {
      std::fprintf(stderr, "FATAL: pruning changed the optimum\n");
      return 1;
    }
    std::printf("%-8u %6u %14llu %14llu %8.1fx %12.2f %12.2f\n", ndom,
                buckets,
                static_cast<unsigned long long>(sp.inner_iterations),
                static_cast<unsigned long long>(sf.inner_iterations),
                static_cast<double>(sf.inner_iterations) /
                    std::max<uint64_t>(1, sp.inner_iterations),
                tp, tf);
  }
  std::printf(
      "\nExpected: identical optima; the pruning cuts DP inner iterations "
      "by a growing\nfactor as the domain grows (the paper notes it "
      "\"significantly reduces running\ntime when n is very large\").\n");
  return 0;
}
