// Shared scaffolding for the experiment harness: builds the per-dataset
// System (dataset -> point file -> C2LSH -> workload analysis) and provides
// table-printing helpers so every bench binary prints rows in the style of
// the paper's tables/figures.

#ifndef EEB_BENCH_BENCH_COMMON_H_
#define EEB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/metrics.h"
#include "workload/generator.h"
#include "workload/registry.h"

namespace eeb::bench {

/// Everything one experiment needs for one dataset.
struct Workbench {
  workload::DatasetSpec spec;
  Dataset data;
  workload::QueryLog log;
  // Declared before `system` (which holds bound instrument pointers) so the
  // registry outlives it.
  obs::MetricsRegistry metrics;
  std::unique_ptr<core::System> system;
  size_t default_cache_bytes = 0;
  std::string dir;
};

/// Builds a workbench. Aborts (prints + exits) on error — bench binaries
/// have no useful recovery path.
std::unique_ptr<Workbench> MakeWorkbench(
    workload::DatasetSpec spec,
    core::SystemOptions opt = core::SystemOptions{});

/// Prints the experiment banner: which paper table/figure it regenerates.
/// Also opens the bench metrics JSONL sink — every subsequent RunCell
/// appends one line with the cell's config, headline aggregates, and a
/// cumulative metrics-registry snapshot. The path is $EEB_METRICS_OUT when
/// set, else metrics_<sanitized id>.jsonl in the working directory.
void Banner(const std::string& id, const std::string& what);

/// Dies with a message if `st` is not OK.
void Check(const Status& st, const char* what);

/// Aggregate of one (method, config) cell, via System::RunQueries on the
/// test query set at result size k.
core::AggregateResult RunCell(Workbench& wb, core::CacheMethod method,
                              size_t cache_bytes, size_t k, uint32_t tau = 0,
                              bool lru = false);

}  // namespace eeb::bench

#endif  // EEB_BENCH_BENCH_COMMON_H_
