// Paper Fig. 9: physical ordering of the dataset file (raw / clustered /
// sorted-key) under EXACT caching with HFF — refinement time vs k. The
// paper finds the orderings nearly indistinguishable under HFF.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 9", "dataset file ordering, EXACT cache + HFF");

  struct Variant {
    const char* name;
    core::FileOrdering ordering;
  };
  const Variant variants[] = {
      {"Raw", core::FileOrdering::kRaw},
      {"Clustered", core::FileOrdering::kClustered},
      {"SortedKey", core::FileOrdering::kSortedKey},
  };

  std::vector<std::unique_ptr<bench::Workbench>> benches;
  for (const Variant& v : variants) {
    core::SystemOptions opt;
    opt.ordering = v.ordering;
    benches.push_back(bench::MakeWorkbench(workload::SogouSimSpec(), opt));
  }

  std::printf("%-6s %14s %14s %14s\n", "k", "Raw(s)", "Clustered(s)",
              "SortedKey(s)");
  for (size_t k : {10, 20, 40, 60, 80, 100}) {
    std::printf("%-6zu", k);
    for (auto& wb : benches) {
      const auto agg = bench::RunCell(*wb, core::CacheMethod::kExact,
                                      wb->default_cache_bytes, k);
      std::printf(" %14.3f", agg.avg_refine_seconds);
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: the three orderings perform similarly "
              "under HFF.\n");
  return 0;
}
