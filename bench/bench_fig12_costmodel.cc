// Paper Fig. 12: estimated vs measured refinement I/O of HC-W as a function
// of the code length tau, on all three datasets. Validates the Sec. 4 cost
// model and the tau it recommends.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 12", "cost model: estimated vs measured I/O (HC-W)");

  const size_t k = 10;
  for (const auto& spec : workload::AllSpecs()) {
    auto wb = bench::MakeWorkbench(spec);
    // Same 5%-of-file cache as the Fig. 15 sweep (see DESIGN.md).
    const size_t cs = wb->spec.n * wb->spec.dim * sizeof(float) / 20;
    const auto inputs = wb->system->MakeCostInputs(cs, k);
    const uint32_t recommended = core::OptimalTauEquiWidth(inputs);

    std::printf("\n[%s]  (cost model recommends tau = %u)\n",
                spec.name.c_str(), recommended);
    std::printf("%-6s %16s %16s\n", "tau", "estimated I/O", "measured I/O");
    for (uint32_t tau = 1; tau <= wb->system->lvalue(); ++tau) {
      const auto est = core::EstimateEquiWidth(inputs, tau);
      const auto agg = bench::RunCell(*wb, core::CacheMethod::kHcW, cs, k,
                                      tau);
      std::printf("%-6u %16.1f %16.1f\n", tau, est.expected_crefine,
                  agg.avg_fetched);
    }
  }
  std::printf(
      "\nPaper shape: the estimate tracks the measurement closely and the "
      "recommended tau\nlands at or next to the measured optimum.\n");
  return 0;
}
