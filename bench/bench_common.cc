#include "bench/bench_common.h"

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>

#include "common/timer.h"
#include "obs/export.h"

namespace eeb::bench {
namespace {

// Metrics JSONL sink shared by every RunCell of the binary; opened by
// Banner, re-opened (closing the previous sink) when a binary runs several
// banners, and flushed+closed at process exit.
FILE* g_metrics_file = nullptr;
std::string g_bench_id;

void CloseMetricsSink() {
  if (g_metrics_file == nullptr) return;
  std::fflush(g_metrics_file);
  std::fclose(g_metrics_file);
  g_metrics_file = nullptr;
}

std::string SanitizeId(const std::string& id) {
  std::string out;
  for (char c : id) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(
                            std::tolower(static_cast<unsigned char>(c)))
                      : '_');
  }
  return out;
}

}  // namespace

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

std::unique_ptr<Workbench> MakeWorkbench(workload::DatasetSpec spec,
                                         core::SystemOptions opt) {
  auto wb = std::make_unique<Workbench>();
  wb->spec = workload::MaybeQuick(spec);
  wb->dir = (std::filesystem::temp_directory_path() /
             ("eeb_bench_" + wb->spec.name + "_" + std::to_string(getpid())))
                .string();
  std::filesystem::create_directories(wb->dir);

  Timer t;
  wb->data = workload::GenerateClustered(wb->spec);
  wb->log = workload::GenerateQueryLog(
      wb->data, workload::MaybeQuick(workload::DefaultLogSpec()));
  std::fprintf(stderr, "[%s] generated n=%zu d=%zu in %.1fs\n",
               wb->spec.name.c_str(), wb->data.size(), wb->data.dim(),
               t.ElapsedSeconds());

  t.Start();
  opt.ndom = wb->spec.ndom;
  // C2LSH's candidate volume scales with the dataset (beta * n in the
  // original scheme); keep that proportionality unless the caller already
  // overrode the default.
  if (opt.lsh.beta_candidates == index::C2LshOptions{}.beta_candidates) {
    opt.lsh.beta_candidates =
        std::max<uint32_t>(100, static_cast<uint32_t>(wb->spec.n / 400));
  }
  Check(core::System::Create(storage::Env::Default(), wb->dir, wb->data,
                             wb->log.workload, opt, &wb->system),
        "System::Create");
  wb->default_cache_bytes = workload::DefaultCacheBytes(wb->spec);
  wb->system->EnableMetrics(&wb->metrics);
  std::fprintf(stderr,
               "[%s] system built in %.1fs (avg |C(q)|=%.0f, Dmax=%.0f)\n",
               wb->spec.name.c_str(), t.ElapsedSeconds(),
               wb->system->workload_stats().avg_candidates,
               wb->system->workload_stats().dmax);
  return wb;
}

void Banner(const std::string& id, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("Reproduction note: synthetic surrogate datasets + modeled\n");
  std::printf("disk (random %.1f ms/page, sequential pages cheap); compare\n",
              5.0);
  std::printf("SHAPES (ordering, ratios, crossovers), not absolute times.\n");
  std::printf("==========================================================\n");

  // A second Banner (multi-experiment binary) retargets the sink: close the
  // previous file first so its lines are durable and the handle is not
  // leaked.
  if (g_metrics_file != nullptr && id != g_bench_id) CloseMetricsSink();
  if (g_metrics_file == nullptr) {
    g_bench_id = id;
    const char* env_path = std::getenv("EEB_METRICS_OUT");
    const std::string path = env_path != nullptr && env_path[0] != '\0'
                                 ? std::string(env_path)
                                 : "metrics_" + SanitizeId(id) + ".jsonl";
    g_metrics_file = std::fopen(path.c_str(), "w");
    if (g_metrics_file == nullptr) {
      std::fprintf(stderr, "warning: cannot open metrics sink %s\n",
                   path.c_str());
    } else {
      std::fprintf(stderr, "[bench] metrics JSONL -> %s\n", path.c_str());
      static const bool registered = std::atexit(CloseMetricsSink) == 0;
      (void)registered;
    }
  }
}

core::AggregateResult RunCell(Workbench& wb, core::CacheMethod method,
                              size_t cache_bytes, size_t k, uint32_t tau,
                              bool lru) {
  Check(wb.system->ConfigureCache(method, cache_bytes, tau, lru),
        "ConfigureCache");
  core::AggregateResult agg;
  Check(wb.system->RunQueries(wb.log.test, k, &agg), "RunQueries");

  if (g_metrics_file != nullptr) {
    // One line per cell: config, headline aggregates, and a cumulative
    // registry snapshot (counters are process totals, not per-cell deltas).
    std::fprintf(
        g_metrics_file,
        "{\"bench\":\"%s\",\"dataset\":\"%s\",\"method\":\"%s\","
        "\"cache_bytes\":%zu,\"k\":%zu,\"tau\":%u,\"lru\":%s,"
        "\"hit_ratio\":%.9g,\"prune_ratio\":%.9g,"
        "\"avg_response_seconds\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
        "\"p99\":%.9g,\"metrics\":%s}\n",
        g_bench_id.c_str(), wb.spec.name.c_str(),
        core::CacheMethodName(method), cache_bytes, k,
        wb.system->last_tau(), lru ? "true" : "false", agg.hit_ratio,
        agg.prune_ratio, agg.avg_response_seconds, agg.p50_response_seconds,
        agg.p95_response_seconds, agg.p99_response_seconds,
        obs::ExportJson(wb.metrics).c_str());
    std::fflush(g_metrics_file);
  }
  return agg;
}

}  // namespace eeb::bench
