// Ablation of the paper's footnote 6: fetching cache-missed candidates
// eagerly during the reduction phase tightens lbk/ubk but pays I/O for
// every miss. The footnote predicts it helps only at middling hit ratios
// (at low hit ratios few candidates are prunable anyway; at high hit ratios
// the bounds are already tight). Sweep the cache size to show that.

#include "bench/bench_common.h"
#include "core/knn_engine.h"

int main() {
  using namespace eeb;
  bench::Banner("Ablation", "footnote-6 eager miss fetch (SOGOU-SIM)");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);
  const size_t k = 10;

  std::printf("%-10s %8s %14s %14s\n", "CS/file", "hit", "lazy I/O",
              "eager I/O");
  for (double frac : {0.005, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    const size_t cs = static_cast<size_t>(file_bytes * frac);
    bench::Check(wb->system->ConfigureCache(core::CacheMethod::kHcO, cs),
                 "ConfigureCache");

    double hit = 0;
    double lazy_io = 0, eager_io = 0;
    // Lazy run (the default engine behavior).
    {
      core::AggregateResult agg;
      bench::Check(wb->system->RunQueries(wb->log.test, k, &agg), "lazy");
      hit = agg.hit_ratio;
      lazy_io = agg.avg_fetched;
    }
    // Eager run: same cache, different engine policy. Build a private
    // engine so the System's default stays untouched.
    {
      core::KnnEngine engine(&wb->system->lsh(), &wb->system->point_file(),
                             wb->system->cache(),
                             core::EngineOptions{.eager_miss_fetch = true});
      double total = 0;
      for (const auto& q : wb->log.test) {
        core::QueryResult r;
        bench::Check(engine.Query(q, k, &r), "eager query");
        total += static_cast<double>(r.fetched);
      }
      eager_io = total / wb->log.test.size();
    }
    std::printf("%-10.3f %8.2f %14.1f %14.1f\n", frac, hit, lazy_io,
                eager_io);
  }
  std::printf(
      "\nExpected: eager fetching costs extra I/O at low hit ratios (every "
      "miss is paid\nimmediately) and converges to lazy at high hit ratios; "
      "any win is confined to the\nmiddle — matching the paper's remark that "
      "the optimization \"is not effective when\nthe hit ratio is low ... or "
      "high\".\n");
  return 0;
}
