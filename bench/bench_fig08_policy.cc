// Paper Fig. 8: caching policy comparison (HFF vs LRU) with EXACT caching
// on the SOGOU surrogate — refinement time as a function of the result
// size k. HFF (static, workload-driven) should win.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 8", "HFF vs LRU caching policy, EXACT cache");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  const size_t cs = wb->default_cache_bytes;

  std::printf("%-6s %18s %18s\n", "k", "HFF refine(s)", "LRU refine(s)");
  for (size_t k : {10, 20, 40, 60, 80, 100}) {
    const auto hff =
        bench::RunCell(*wb, core::CacheMethod::kExact, cs, k, 0, false);
    // LRU starts cold; bring it to steady state by replaying the historical
    // workload stream (what a running service would have processed), then
    // measure on the held-out test queries.
    bench::Check(
        wb->system->ConfigureCache(core::CacheMethod::kExact, cs, 0, true),
        "ConfigureCache");
    core::AggregateResult warm;
    bench::Check(wb->system->RunQueries(wb->log.workload, k, &warm),
                 "warmup");
    core::AggregateResult lru;
    bench::Check(wb->system->RunQueries(wb->log.test, k, &lru), "lru");
    std::printf("%-6zu %18.3f %18.3f\n", k, hff.avg_refine_seconds,
                lru.avg_refine_seconds);
  }
  std::printf("\nPaper shape: HFF consistently below LRU; both grow with k.\n");
  return 0;
}
