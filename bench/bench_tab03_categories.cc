// Paper Table 3: histogram categories on the SOGOU surrogate — global
// (HC-W/HC-D/HC-O) vs individual per-dimension (iHC-*) vs multi-dimensional
// (mHC-R): histogram space, construction time, and average refinement time.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Table 3", "effect of histogram categories (SOGOU-SIM)");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  const size_t cs = wb->default_cache_bytes;
  const size_t k = 10;

  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"HC-W", core::CacheMethod::kHcW},   {"iHC-W", core::CacheMethod::kIHcW},
      {"HC-D", core::CacheMethod::kHcD},   {"iHC-D", core::CacheMethod::kIHcD},
      {"HC-O", core::CacheMethod::kHcO},   {"iHC-O", core::CacheMethod::kIHcO},
      {"mHC-R", core::CacheMethod::kMHcR},
  };

  std::printf("%-8s %12s %18s %16s\n", "method", "space(KB)", "construct(s)",
              "avg Trefine(s)");
  for (const Row& row : rows) {
    const auto agg = bench::RunCell(*wb, row.method, cs, k);
    std::printf("%-8s %12.2f %18.4f %16.4f\n", row.name,
                wb->system->last_histogram_space_bytes() / 1024.0,
                wb->system->last_histogram_build_seconds(),
                agg.avg_refine_seconds);
  }
  std::printf(
      "\nPaper shape: global and individual histograms achieve similar "
      "Trefine, but the\nindividual variants cost d times more space and "
      "construction time (iHC-O most\nexpensive); mHC-R is ineffective due "
      "to the curse of dimensionality.\nNote: at the cost-model default "
      "tau the global variants coincide on our 10-bit\nintegral domain "
      "(lossless codes); their quality gap appears in the tau sweep\nof "
      "Fig. 15 and at fixed tau in Fig. 11.\n");
  return 0;
}
