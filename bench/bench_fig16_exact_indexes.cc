// Paper Fig. 16: EXACT vs HC-O caching on exact kNN indexes — (a) iDistance,
// (b) VA-file, (c) VP-tree — average response time vs k on the IMGNET
// surrogate. Tree indexes use leaf-node caches (Sec. 3.6.1); the VA-file
// filter feeds the same Algorithm-1 point-cache pipeline as LSH.

#include <filesystem>
#include <numeric>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "cache/node_cache.h"
#include "core/knn_engine.h"
#include "core/workload.h"
#include "hist/builders.h"
#include "index/idistance/idistance.h"
#include "index/mtree/mtree.h"
#include "index/vafile/vafile.h"
#include "index/vptree/vptree.h"

namespace {

using namespace eeb;

const size_t kKs[] = {1, 10, 20, 40, 60, 80, 100};

// Runs a tree index over the test queries with the given node cache and
// returns the average modeled response seconds.
template <typename Index>
double RunTree(const Index& idx, const workload::QueryLog& log, size_t k,
               cache::NodeCache* cache, const storage::DiskModel& disk) {
  double total = 0;
  for (const auto& q : log.test) {
    index::TreeSearchResult res;
    Timer t;
    bench::Check(idx.Search(q, k, cache, &res), "tree search");
    total += t.ElapsedSeconds() + disk.Seconds(res.io);
  }
  return total / log.test.size();
}

template <typename Index>
void TreePanel(const char* title, const Index& idx, const Dataset& data,
               const workload::QueryLog& log, size_t cache_bytes,
               uint32_t ndom) {
  // Leaf access frequencies from the workload (cache fill order), and the
  // QR points for the HC-O histogram.
  core::LeafWorkloadStats wl;
  auto search = [&](std::span<const Scalar> q, size_t k,
                    index::TreeSearchResult* out) {
    return idx.Search(q, k, nullptr, out);
  };
  bench::Check(core::AnalyzeTreeWorkload(search, idx.num_leaves(),
                                         log.workload, 10, &wl),
               "tree workload");

  hist::FrequencyArray fprime =
      hist::FrequencyArray::FromPoints(data, wl.qr_points, ndom);
  hist::Histogram hco;
  bench::Check(hist::BuildKnnOptimal(fprime, 1u << 6, &hco), "HC-O");

  cache::ExactNodeCache exact(cache_bytes);
  bench::Check(exact.Fill(data, idx.store().leaf_points(), wl.leaves_by_freq),
               "exact fill");
  cache::ApproxNodeCache approx(&hco, data.dim(), cache_bytes,
                                /*integral=*/true);
  bench::Check(approx.Fill(data, idx.store().leaf_points(),
                           wl.leaves_by_freq),
               "approx fill");

  storage::DiskModel disk;
  std::printf("\n[%s]  leaves cached: EXACT=%zu HC-O=%zu of %zu\n", title,
              exact.size(), approx.size(), idx.num_leaves());
  std::printf("%-6s %12s %12s\n", "k", "EXACT(s)", "HC-O(s)");
  for (size_t k : kKs) {
    const double te = RunTree(idx, log, k, &exact, disk);
    const double to = RunTree(idx, log, k, &approx, disk);
    std::printf("%-6zu %12.3f %12.3f\n", k, te, to);
  }
}

void VaFilePanel(const Dataset& data, const workload::QueryLog& log,
                 size_t cache_bytes, uint32_t ndom, const std::string& dir) {
  index::VaFileOptions vopt;
  vopt.bits_per_dim = 4;
  vopt.ndom = ndom;
  vopt.integral = true;
  std::unique_ptr<index::VaFile> va;
  bench::Check(index::VaFile::Build(data, vopt, &va), "VA-file build");

  const std::string path = dir + "/points_va.eeb";
  bench::Check(storage::PointFile::Create(storage::Env::Default(), path,
                                          data),
               "point file");
  std::unique_ptr<storage::PointFile> pf;
  bench::Check(storage::PointFile::Open(storage::Env::Default(), path, &pf),
               "open point file");

  core::WorkloadStats wl;
  bench::Check(core::AnalyzeWorkload(va.get(), data, log.workload, 10, &wl),
               "VA workload");
  hist::FrequencyArray fprime =
      hist::FrequencyArray::FromPoints(data, wl.qr_points, ndom);
  hist::Histogram hco;
  bench::Check(hist::BuildKnnOptimal(fprime, 1u << 6, &hco), "HC-O");

  cache::ExactCache exact(data.dim(), cache_bytes);
  bench::Check(exact.Fill(data, wl.ids_by_freq), "exact fill");
  cache::HistCodeCache approx(&hco, data.dim(), cache_bytes, false,
                              /*integral=*/true);
  bench::Check(approx.Fill(data, wl.ids_by_freq), "approx fill");

  storage::DiskModel disk;
  std::printf("\n[VA-file]  points cached: EXACT=%zu HC-O=%zu of %zu\n",
              exact.size(), approx.size(), data.size());
  std::printf("%-6s %12s %12s\n", "k", "EXACT(s)", "HC-O(s)");
  for (size_t k : kKs) {
    double te = 0, to = 0;
    for (int which = 0; which < 2; ++which) {
      core::KnnEngine engine(va.get(), pf.get(),
                             which == 0
                                 ? static_cast<cache::KnnCache*>(&exact)
                                 : static_cast<cache::KnnCache*>(&approx));
      double total = 0;
      for (const auto& q : log.test) {
        core::QueryResult r;
        Timer t;
        bench::Check(engine.Query(q, k, &r), "query");
        storage::IoStats io = r.gen_io;
        io += r.refine_io;
        total += t.ElapsedSeconds() + disk.Seconds(io);
      }
      (which == 0 ? te : to) = total / log.test.size();
    }
    std::printf("%-6zu %12.3f %12.3f\n", k, te, to);
  }
}

}  // namespace

int main() {
  bench::Banner("Figure 16", "EXACT vs HC-O on exact indexes (IMGNET-SIM)");

  auto spec = workload::MaybeQuick(workload::ImgnetSimSpec());
  Dataset data = workload::GenerateClustered(spec);
  auto log = workload::GenerateQueryLog(
      data, workload::MaybeQuick(workload::DefaultLogSpec()));
  const size_t cs = workload::DefaultCacheBytes(spec);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_fig16").string();
  std::filesystem::create_directories(dir);

  {
    index::IDistanceOptions opt;
    opt.num_partitions = 64;
    std::unique_ptr<index::IDistance> idist;
    bench::Check(index::IDistance::Build(storage::Env::Default(),
                                         dir + "/idist.eeb", data, opt,
                                         &idist),
                 "iDistance build");
    TreePanel("iDistance", *idist, data, log, cs, spec.ndom);
  }
  VaFilePanel(data, log, cs, spec.ndom, dir);
  {
    std::unique_ptr<index::VpTree> vp;
    bench::Check(index::VpTree::Build(storage::Env::Default(),
                                      dir + "/vptree.eeb", data, {}, &vp),
                 "VP-tree build");
    TreePanel("VP-tree", *vp, data, log, cs, spec.ndom);
  }
  {
    // Extension beyond the paper's three panels: the M-tree-family ball
    // tree from index/mtree.
    std::unique_ptr<index::MTree> mt;
    bench::Check(index::MTree::Build(storage::Env::Default(),
                                     dir + "/mtree.eeb", data, {}, &mt),
                 "M-tree build");
    TreePanel("M-tree (extension)", *mt, data, log, cs, spec.ndom);
  }

  std::printf(
      "\nPaper shape: on every exact index HC-O caching beats EXACT caching "
      "by a large\nfactor (the paper reports an order of magnitude), because "
      "many more (approximate)\nleaf nodes / points fit in the same budget.\n");
  return 0;
}
