// Paper Fig. 10: C-VA (cache the whole VA-file, tau chosen so that every
// point fits) vs HC-D (equi-depth codes for the hottest points at the
// cost-model tau) over cache size, on the SOGOU surrogate.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 10", "C-VA vs HC-D over cache size (SOGOU-SIM)");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  const size_t file_bytes =
      wb->spec.n * wb->spec.dim * sizeof(float);
  const size_t k = 10;

  std::printf("%-12s %8s %16s %16s\n", "cache(MB)", "of file", "HC-D resp(s)",
              "C-VA resp(s)");
  for (double frac : {0.03, 0.06, 0.10, 0.14, 0.18, 0.22}) {
    const size_t cs = static_cast<size_t>(file_bytes * frac);
    const auto hcd = bench::RunCell(*wb, core::CacheMethod::kHcD, cs, k);
    const auto cva = bench::RunCell(*wb, core::CacheMethod::kCVa, cs, k);
    std::printf("%-12.1f %7.0f%% %16.3f %16.3f\n", cs / (1024.0 * 1024.0),
                frac * 100, hcd.avg_response_seconds,
                cva.avg_response_seconds);
  }
  std::printf(
      "\nPaper shape: at small cache sizes C-VA is worse (it spends bits on "
      "cold points,\nleaving few bits per point); as the cache grows the two "
      "converge.\n");
  return 0;
}
