// Paper Fig. 15: effect of the code length tau on the SOGOU surrogate —
// (a) rho_hit * rho_prune, (b) refinement I/O (Crefine), (c) refinement
// time — for HC-W, HC-D and HC-O.

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 15", "effect of code length tau (SOGOU-SIM)");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  // Tighter-than-default cache (5% of the file): at this scale the
  // hit-ratio decline at large tau — the right-hand side of the paper's
  // trade-off — is only visible when the cache cannot hold the hot set.
  const size_t cs = wb->spec.n * wb->spec.dim * sizeof(float) / 20;
  const size_t k = 10;
  std::printf("cache size: %.1f MB (5%% of the file; see DESIGN.md)\n",
              cs / (1024.0 * 1024.0));

  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"HC-W", core::CacheMethod::kHcW},
      {"HC-D", core::CacheMethod::kHcD},
      {"HC-O", core::CacheMethod::kHcO},
  };

  std::printf("%-5s", "tau");
  for (const Row& row : rows) {
    std::printf("  %8s-hp %8s-io %8s-t", row.name, row.name, row.name);
  }
  std::printf("\n");
  for (uint32_t tau = 1; tau <= wb->system->lvalue(); ++tau) {
    std::printf("%-5u", tau);
    for (const Row& row : rows) {
      const auto agg = bench::RunCell(*wb, row.method, cs, k, tau);
      std::printf("  %11.3f %11.1f %10.3f", agg.hit_ratio * agg.prune_ratio,
                  agg.avg_fetched, agg.avg_refine_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "\nColumns per method: hp = rho_hit*rho_prune, io = refinement point "
      "fetches,\nt = refinement seconds. Paper shape: hp (and so the cost) "
      "has an interior\noptimum — too few bits give loose bounds, too many "
      "bits shrink the cache;\nHC-O is the most robust across tau.\n");
  return 0;
}
