// Paper Fig. 14: average response time vs result size k on all three
// datasets for HC-W, HC-D and HC-O (plus EXACT for reference).

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Figure 14", "response time vs result size k");

  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"EXACT", core::CacheMethod::kExact},
      {"HC-W", core::CacheMethod::kHcW},
      {"HC-D", core::CacheMethod::kHcD},
      {"HC-O", core::CacheMethod::kHcO},
  };

  for (const auto& spec : workload::AllSpecs()) {
    auto wb = bench::MakeWorkbench(spec);
    const size_t cs = wb->default_cache_bytes;
    std::printf("\n[%s]\n", spec.name.c_str());
    std::printf("%-6s", "k");
    for (const Row& row : rows) std::printf(" %9s", row.name);
    std::printf("\n");
    for (size_t k : {1, 10, 20, 40, 60, 80, 100}) {
      std::printf("%-6zu", k);
      for (const Row& row : rows) {
        const auto agg = bench::RunCell(*wb, row.method, cs, k);
        std::printf(" %9.3f", agg.avg_response_seconds);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: time rises with k for every method; HC-O stays the "
      "lowest, then\nHC-D, then HC-W, with EXACT well above.\n");
  return 0;
}
