// Paper Table 4: average refinement time per method and dataset, at the
// cost-model default tau and at the measured optimal tau*.

#include <limits>

#include "bench/bench_common.h"

int main() {
  using namespace eeb;
  bench::Banner("Table 4", "refinement time at default tau and optimal tau*");

  const size_t k = 10;
  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"HC-W", core::CacheMethod::kHcW},
      {"HC-V", core::CacheMethod::kHcV},
      {"HC-D", core::CacheMethod::kHcD},
      {"HC-O", core::CacheMethod::kHcO},
  };

  for (const auto& spec : workload::AllSpecs()) {
    auto wb = bench::MakeWorkbench(spec);
    const size_t cs = wb->default_cache_bytes;

    const auto exact = bench::RunCell(*wb, core::CacheMethod::kExact, cs, k);
    std::printf("\n[%s]  EXACT baseline: %.4f s\n", spec.name.c_str(),
                exact.avg_refine_seconds);
    std::printf("%-8s %14s %14s %8s %10s\n", "method", "default(s)",
                "optimal(s)", "tau*", "vs EXACT");
    for (const Row& row : rows) {
      // Default: cost-model-chosen tau.
      const auto def = bench::RunCell(*wb, row.method, cs, k);
      // Optimal: sweep tau and keep the best measured refinement time.
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_tau = 0;
      for (uint32_t tau = 1; tau <= wb->system->lvalue(); ++tau) {
        const auto agg = bench::RunCell(*wb, row.method, cs, k, tau);
        if (agg.avg_refine_seconds < best) {
          best = agg.avg_refine_seconds;
          best_tau = tau;
        }
      }
      std::printf("%-8s %14.4f %14.4f %8u %9.1fx\n", row.name,
                  def.avg_refine_seconds, best, best_tau,
                  exact.avg_refine_seconds / best);
    }
  }
  std::printf(
      "\nPaper shape: HC-O fastest (an order of magnitude below EXACT), then "
      "HC-D, then\nHC-V/HC-W; the cost-model default is at or near the swept "
      "optimum.\n");
  return 0;
}
