// Ablation: does the paper's histogram metric M3 actually predict pruning
// performance? For every global builder (including the MaxDiff extension)
// at fixed mid-range code lengths, report the metric value next to the
// measured refinement I/O — the paper's core design claim is that
// minimizing M3 (what HC-O does) minimizes the I/O.

#include "bench/bench_common.h"
#include "hist/builders.h"

int main() {
  using namespace eeb;
  bench::Banner("Ablation",
                "histogram metric M3 vs measured refinement I/O (SOGOU-SIM)");

  auto wb = bench::MakeWorkbench(workload::SogouSimSpec());
  const size_t cs = wb->default_cache_bytes;
  const size_t k = 10;

  struct Row {
    const char* name;
    core::CacheMethod method;
  };
  const Row rows[] = {
      {"HC-W", core::CacheMethod::kHcW}, {"HC-V", core::CacheMethod::kHcV},
      {"HC-M", core::CacheMethod::kHcM}, {"HC-D", core::CacheMethod::kHcD},
      {"HC-O", core::CacheMethod::kHcO},
  };

  for (uint32_t tau : {5u, 6u, 7u}) {
    std::printf("\n[tau = %u]\n", tau);
    std::printf("%-8s %16s %14s %14s\n", "method", "metric M3", "refine I/O",
                "Trefine(s)");
    for (const Row& row : rows) {
      hist::Histogram h;
      bench::Check(wb->system->BuildGlobalHistogram(row.method, tau, &h),
                   "build");
      const double m3 = hist::MetricM3(h, wb->system->fprime());
      const auto agg = bench::RunCell(*wb, row.method, cs, k, tau);
      std::printf("%-8s %16.3g %14.1f %14.3f\n", row.name, m3,
                  agg.avg_fetched, agg.avg_refine_seconds);
    }
  }
  std::printf(
      "\nExpected: within each tau, ranking by M3 tracks ranking by measured "
      "I/O, and\nHC-O (the M3 minimizer by construction) has the smallest "
      "metric value.\nWorkload-blind builders (HC-W/V/M/D) can only win by "
      "luck.\n");
  return 0;
}
