// Extension benchmark (paper Sec. 7 future work): the advanced operations —
// eps-range search, kNN join and DBSCAN — running on the cache-assisted
// engine. Reports how much disk I/O the HC-O cache removes from each
// operation at the default budget (results are identical with and without
// the cache).

#include <filesystem>

#include "bench/bench_common.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "core/dbscan.h"
#include "core/knn_engine.h"
#include "core/knn_join.h"
#include "core/range_search.h"
#include "hist/builders.h"
#include "index/full_scan.h"

int main() {
  using namespace eeb;
  bench::Banner("Extensions",
                "advanced operations on the cache (range / join / DBSCAN)");

  // Small clustered dataset so exact (full-scan) semantics stay affordable.
  // n stays small because the no-cache baselines are quadratic (full-scan
  // semantics keep the operations exact).
  workload::DatasetSpec spec;
  spec.name = "ext";
  spec.n = 5000;
  spec.dim = 32;
  spec.ndom = 1024;
  spec.clusters = 12;
  spec.cluster_stddev = 40.0;
  spec = workload::MaybeQuick(spec);
  Dataset data = workload::GenerateClustered(spec);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_ext").string();
  std::filesystem::create_directories(dir);
  bench::Check(storage::PointFile::Create(storage::Env::Default(),
                                          dir + "/points", data),
               "point file");
  std::unique_ptr<storage::PointFile> pf;
  bench::Check(storage::PointFile::Open(storage::Env::Default(),
                                        dir + "/points", &pf),
               "open");

  index::FullScanIndex full(data.size());
  hist::FrequencyArray f = hist::FrequencyArray::FromDataset(data, spec.ndom);
  hist::Histogram hco;
  bench::Check(hist::BuildKnnOptimal(f, 256, &hco), "HC-O");
  cache::HistCodeCache cache(&hco, data.dim(), 1 << 24, false, true);
  std::vector<PointId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  bench::Check(cache.Fill(data, ids), "fill");

  Rng rng(41);
  storage::DiskModel disk;

  // ---- range queries -----------------------------------------------------
  {
    uint64_t fetched_cached = 0, fetched_plain = 0, total = 0;
    for (int t = 0; t < 20; ++t) {
      const PointId src = static_cast<PointId>(rng.Uniform(data.size()));
      std::vector<Scalar> q(data.point(src).begin(), data.point(src).end());
      core::RangeResult a, b;
      bench::Check(core::RangeQuery(&full, *pf, &cache, q, 360.0, 10, &a),
                   "range cached");
      bench::Check(core::RangeQuery(&full, *pf, nullptr, q, 360.0, 10, &b),
                   "range plain");
      fetched_cached += a.fetched;
      fetched_plain += b.fetched;
      total += a.candidates;
    }
    std::printf("range search (eps=360, 20 queries, exact semantics):\n");
    std::printf("  candidates %llu, fetched without cache %llu, with HC-O "
                "%llu (%.1fx less I/O)\n\n",
                (unsigned long long)total, (unsigned long long)fetched_plain,
                (unsigned long long)fetched_cached,
                fetched_cached ? static_cast<double>(fetched_plain) /
                                     fetched_cached
                               : 0.0);
  }

  // ---- kNN join ------------------------------------------------------------
  {
    Dataset outer(data.dim());
    for (int i = 0; i < 200; ++i) {
      outer.Append(
          data.point(static_cast<PointId>(rng.Uniform(data.size()))));
    }
    core::KnnEngine cached_engine(&full, pf.get(), &cache);
    core::KnnEngine plain_engine(&full, pf.get(), nullptr);
    core::KnnJoinResult a, b;
    bench::Check(core::KnnJoin(cached_engine, outer, {.k = 10}, &a),
                 "join cached");
    bench::Check(core::KnnJoin(plain_engine, outer, {.k = 10}, &b),
                 "join plain");
    std::printf("kNN join (200 outer points, k=10, exact semantics):\n");
    std::printf("  fetched without cache %llu (modeled %.1f s), with HC-O "
                "%llu (modeled %.1f s)\n\n",
                (unsigned long long)b.fetched, disk.Seconds(b.io),
                (unsigned long long)a.fetched, disk.Seconds(a.io));
  }

  // ---- DBSCAN -------------------------------------------------------------
  {
    core::DbscanOptions opt;
    opt.eps = 360.0;
    opt.min_pts = 8;
    core::DbscanResult a, b;
    bench::Check(core::Dbscan(&full, *pf, &cache, data, opt, &a),
                 "dbscan cached");
    bench::Check(core::Dbscan(&full, *pf, nullptr, data, opt, &b),
                 "dbscan plain");
    std::printf("DBSCAN (eps=360, minPts=8): %d clusters (identical with "
                "and without cache: %s)\n",
                a.num_clusters, a.labels == b.labels ? "yes" : "NO!");
    std::printf("  fetched without cache %llu, with HC-O %llu; bound-decided "
                "%llu of %llu range probes' candidates\n",
                (unsigned long long)b.fetched, (unsigned long long)a.fetched,
                (unsigned long long)a.bound_decided,
                (unsigned long long)(a.bound_decided + a.fetched));
  }
  return 0;
}
