file(REMOVE_RECURSE
  "CMakeFiles/lsh_variants_test.dir/lsh_variants_test.cc.o"
  "CMakeFiles/lsh_variants_test.dir/lsh_variants_test.cc.o.d"
  "lsh_variants_test"
  "lsh_variants_test.pdb"
  "lsh_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
