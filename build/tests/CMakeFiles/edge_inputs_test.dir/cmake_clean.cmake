file(REMOVE_RECURSE
  "CMakeFiles/edge_inputs_test.dir/edge_inputs_test.cc.o"
  "CMakeFiles/edge_inputs_test.dir/edge_inputs_test.cc.o.d"
  "edge_inputs_test"
  "edge_inputs_test.pdb"
  "edge_inputs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_inputs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
