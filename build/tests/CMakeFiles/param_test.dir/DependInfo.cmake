
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/param_test.cc" "tests/CMakeFiles/param_test.dir/param_test.cc.o" "gcc" "tests/CMakeFiles/param_test.dir/param_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eeb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/eeb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/eeb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/eeb_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eeb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eeb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eeb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
