# Empty dependencies file for mtree_multiprobe_test.
# This may be replaced when dependencies are built.
