file(REMOVE_RECURSE
  "CMakeFiles/mtree_multiprobe_test.dir/mtree_multiprobe_test.cc.o"
  "CMakeFiles/mtree_multiprobe_test.dir/mtree_multiprobe_test.cc.o.d"
  "mtree_multiprobe_test"
  "mtree_multiprobe_test.pdb"
  "mtree_multiprobe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_multiprobe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
