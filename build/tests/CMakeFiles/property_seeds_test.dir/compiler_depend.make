# Empty compiler generated dependencies file for property_seeds_test.
# This may be replaced when dependencies are built.
