file(REMOVE_RECURSE
  "CMakeFiles/property_seeds_test.dir/property_seeds_test.cc.o"
  "CMakeFiles/property_seeds_test.dir/property_seeds_test.cc.o.d"
  "property_seeds_test"
  "property_seeds_test.pdb"
  "property_seeds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_seeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
