# Empty dependencies file for degenerate_test.
# This may be replaced when dependencies are built.
