# Empty dependencies file for bench_fig06_example.
# This may be replaced when dependencies are built.
