file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_histograms.dir/bench_abl_histograms.cc.o"
  "CMakeFiles/bench_abl_histograms.dir/bench_abl_histograms.cc.o.d"
  "bench_abl_histograms"
  "bench_abl_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
