# Empty dependencies file for bench_abl_histograms.
# This may be replaced when dependencies are built.
