# Empty dependencies file for bench_fig08_policy.
# This may be replaced when dependencies are built.
