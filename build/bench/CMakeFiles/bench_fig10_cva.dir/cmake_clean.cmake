file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cva.dir/bench_fig10_cva.cc.o"
  "CMakeFiles/bench_fig10_cva.dir/bench_fig10_cva.cc.o.d"
  "bench_fig10_cva"
  "bench_fig10_cva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
