# Empty compiler generated dependencies file for bench_fig10_cva.
# This may be replaced when dependencies are built.
