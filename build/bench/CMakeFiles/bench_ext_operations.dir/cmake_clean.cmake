file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_operations.dir/bench_ext_operations.cc.o"
  "CMakeFiles/bench_ext_operations.dir/bench_ext_operations.cc.o.d"
  "bench_ext_operations"
  "bench_ext_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
