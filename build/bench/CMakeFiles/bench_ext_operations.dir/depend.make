# Empty dependencies file for bench_ext_operations.
# This may be replaced when dependencies are built.
