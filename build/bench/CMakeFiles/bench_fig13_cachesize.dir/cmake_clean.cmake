file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cachesize.dir/bench_fig13_cachesize.cc.o"
  "CMakeFiles/bench_fig13_cachesize.dir/bench_fig13_cachesize.cc.o.d"
  "bench_fig13_cachesize"
  "bench_fig13_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
