file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dp_prune.dir/bench_abl_dp_prune.cc.o"
  "CMakeFiles/bench_abl_dp_prune.dir/bench_abl_dp_prune.cc.o.d"
  "bench_abl_dp_prune"
  "bench_abl_dp_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dp_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
