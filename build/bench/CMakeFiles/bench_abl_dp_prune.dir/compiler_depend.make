# Empty compiler generated dependencies file for bench_abl_dp_prune.
# This may be replaced when dependencies are built.
