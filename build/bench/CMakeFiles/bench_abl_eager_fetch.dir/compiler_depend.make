# Empty compiler generated dependencies file for bench_abl_eager_fetch.
# This may be replaced when dependencies are built.
