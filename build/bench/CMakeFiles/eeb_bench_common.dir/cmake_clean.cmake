file(REMOVE_RECURSE
  "CMakeFiles/eeb_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/eeb_bench_common.dir/bench_common.cc.o.d"
  "libeeb_bench_common.a"
  "libeeb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
