# Empty dependencies file for eeb_bench_common.
# This may be replaced when dependencies are built.
