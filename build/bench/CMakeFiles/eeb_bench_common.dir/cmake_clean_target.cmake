file(REMOVE_RECURSE
  "libeeb_bench_common.a"
)
