file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_refinement.dir/bench_tab04_refinement.cc.o"
  "CMakeFiles/bench_tab04_refinement.dir/bench_tab04_refinement.cc.o.d"
  "bench_tab04_refinement"
  "bench_tab04_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
