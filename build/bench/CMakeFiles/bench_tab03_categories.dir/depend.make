# Empty dependencies file for bench_tab03_categories.
# This may be replaced when dependencies are built.
