file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_categories.dir/bench_tab03_categories.cc.o"
  "CMakeFiles/bench_tab03_categories.dir/bench_tab03_categories.cc.o.d"
  "bench_tab03_categories"
  "bench_tab03_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
