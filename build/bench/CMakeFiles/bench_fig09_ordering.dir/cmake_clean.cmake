file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_ordering.dir/bench_fig09_ordering.cc.o"
  "CMakeFiles/bench_fig09_ordering.dir/bench_fig09_ordering.cc.o.d"
  "bench_fig09_ordering"
  "bench_fig09_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
