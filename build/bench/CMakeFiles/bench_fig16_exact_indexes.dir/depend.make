# Empty dependencies file for bench_fig16_exact_indexes.
# This may be replaced when dependencies are built.
