file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_tau.dir/bench_fig15_tau.cc.o"
  "CMakeFiles/bench_fig15_tau.dir/bench_fig15_tau.cc.o.d"
  "bench_fig15_tau"
  "bench_fig15_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
