# Empty dependencies file for bench_fig15_tau.
# This may be replaced when dependencies are built.
