file(REMOVE_RECURSE
  "libeeb_common.a"
)
