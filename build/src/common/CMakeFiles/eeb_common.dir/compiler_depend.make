# Empty compiler generated dependencies file for eeb_common.
# This may be replaced when dependencies are built.
