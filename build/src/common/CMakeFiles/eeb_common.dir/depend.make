# Empty dependencies file for eeb_common.
# This may be replaced when dependencies are built.
