file(REMOVE_RECURSE
  "CMakeFiles/eeb_common.dir/kmeans.cc.o"
  "CMakeFiles/eeb_common.dir/kmeans.cc.o.d"
  "CMakeFiles/eeb_common.dir/status.cc.o"
  "CMakeFiles/eeb_common.dir/status.cc.o.d"
  "CMakeFiles/eeb_common.dir/zipf.cc.o"
  "CMakeFiles/eeb_common.dir/zipf.cc.o.d"
  "libeeb_common.a"
  "libeeb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
