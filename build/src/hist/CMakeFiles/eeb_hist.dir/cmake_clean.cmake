file(REMOVE_RECURSE
  "CMakeFiles/eeb_hist.dir/equi_depth.cc.o"
  "CMakeFiles/eeb_hist.dir/equi_depth.cc.o.d"
  "CMakeFiles/eeb_hist.dir/equi_width.cc.o"
  "CMakeFiles/eeb_hist.dir/equi_width.cc.o.d"
  "CMakeFiles/eeb_hist.dir/frequency.cc.o"
  "CMakeFiles/eeb_hist.dir/frequency.cc.o.d"
  "CMakeFiles/eeb_hist.dir/histogram.cc.o"
  "CMakeFiles/eeb_hist.dir/histogram.cc.o.d"
  "CMakeFiles/eeb_hist.dir/individual.cc.o"
  "CMakeFiles/eeb_hist.dir/individual.cc.o.d"
  "CMakeFiles/eeb_hist.dir/max_diff.cc.o"
  "CMakeFiles/eeb_hist.dir/max_diff.cc.o.d"
  "CMakeFiles/eeb_hist.dir/serialize.cc.o"
  "CMakeFiles/eeb_hist.dir/serialize.cc.o.d"
  "CMakeFiles/eeb_hist.dir/v_optimal.cc.o"
  "CMakeFiles/eeb_hist.dir/v_optimal.cc.o.d"
  "libeeb_hist.a"
  "libeeb_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
