file(REMOVE_RECURSE
  "libeeb_hist.a"
)
