
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hist/equi_depth.cc" "src/hist/CMakeFiles/eeb_hist.dir/equi_depth.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/equi_depth.cc.o.d"
  "/root/repo/src/hist/equi_width.cc" "src/hist/CMakeFiles/eeb_hist.dir/equi_width.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/equi_width.cc.o.d"
  "/root/repo/src/hist/frequency.cc" "src/hist/CMakeFiles/eeb_hist.dir/frequency.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/frequency.cc.o.d"
  "/root/repo/src/hist/histogram.cc" "src/hist/CMakeFiles/eeb_hist.dir/histogram.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/histogram.cc.o.d"
  "/root/repo/src/hist/individual.cc" "src/hist/CMakeFiles/eeb_hist.dir/individual.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/individual.cc.o.d"
  "/root/repo/src/hist/max_diff.cc" "src/hist/CMakeFiles/eeb_hist.dir/max_diff.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/max_diff.cc.o.d"
  "/root/repo/src/hist/serialize.cc" "src/hist/CMakeFiles/eeb_hist.dir/serialize.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/serialize.cc.o.d"
  "/root/repo/src/hist/v_optimal.cc" "src/hist/CMakeFiles/eeb_hist.dir/v_optimal.cc.o" "gcc" "src/hist/CMakeFiles/eeb_hist.dir/v_optimal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eeb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eeb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
