# Empty compiler generated dependencies file for eeb_hist.
# This may be replaced when dependencies are built.
