
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/code_cache.cc" "src/cache/CMakeFiles/eeb_cache.dir/code_cache.cc.o" "gcc" "src/cache/CMakeFiles/eeb_cache.dir/code_cache.cc.o.d"
  "/root/repo/src/cache/exact_cache.cc" "src/cache/CMakeFiles/eeb_cache.dir/exact_cache.cc.o" "gcc" "src/cache/CMakeFiles/eeb_cache.dir/exact_cache.cc.o.d"
  "/root/repo/src/cache/multidim_cache.cc" "src/cache/CMakeFiles/eeb_cache.dir/multidim_cache.cc.o" "gcc" "src/cache/CMakeFiles/eeb_cache.dir/multidim_cache.cc.o.d"
  "/root/repo/src/cache/node_cache.cc" "src/cache/CMakeFiles/eeb_cache.dir/node_cache.cc.o" "gcc" "src/cache/CMakeFiles/eeb_cache.dir/node_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eeb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/eeb_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eeb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
