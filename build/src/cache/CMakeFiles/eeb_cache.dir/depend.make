# Empty dependencies file for eeb_cache.
# This may be replaced when dependencies are built.
