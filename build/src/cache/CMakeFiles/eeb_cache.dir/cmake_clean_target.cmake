file(REMOVE_RECURSE
  "libeeb_cache.a"
)
