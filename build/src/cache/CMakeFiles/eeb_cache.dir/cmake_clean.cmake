file(REMOVE_RECURSE
  "CMakeFiles/eeb_cache.dir/code_cache.cc.o"
  "CMakeFiles/eeb_cache.dir/code_cache.cc.o.d"
  "CMakeFiles/eeb_cache.dir/exact_cache.cc.o"
  "CMakeFiles/eeb_cache.dir/exact_cache.cc.o.d"
  "CMakeFiles/eeb_cache.dir/multidim_cache.cc.o"
  "CMakeFiles/eeb_cache.dir/multidim_cache.cc.o.d"
  "CMakeFiles/eeb_cache.dir/node_cache.cc.o"
  "CMakeFiles/eeb_cache.dir/node_cache.cc.o.d"
  "libeeb_cache.a"
  "libeeb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
