file(REMOVE_RECURSE
  "libeeb_storage.a"
)
