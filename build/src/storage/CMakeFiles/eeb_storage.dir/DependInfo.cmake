
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/eeb_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/eeb_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/file_ordering.cc" "src/storage/CMakeFiles/eeb_storage.dir/file_ordering.cc.o" "gcc" "src/storage/CMakeFiles/eeb_storage.dir/file_ordering.cc.o.d"
  "/root/repo/src/storage/mem_env.cc" "src/storage/CMakeFiles/eeb_storage.dir/mem_env.cc.o" "gcc" "src/storage/CMakeFiles/eeb_storage.dir/mem_env.cc.o.d"
  "/root/repo/src/storage/point_file.cc" "src/storage/CMakeFiles/eeb_storage.dir/point_file.cc.o" "gcc" "src/storage/CMakeFiles/eeb_storage.dir/point_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eeb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
