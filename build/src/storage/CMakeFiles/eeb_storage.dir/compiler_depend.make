# Empty compiler generated dependencies file for eeb_storage.
# This may be replaced when dependencies are built.
