file(REMOVE_RECURSE
  "CMakeFiles/eeb_storage.dir/env.cc.o"
  "CMakeFiles/eeb_storage.dir/env.cc.o.d"
  "CMakeFiles/eeb_storage.dir/file_ordering.cc.o"
  "CMakeFiles/eeb_storage.dir/file_ordering.cc.o.d"
  "CMakeFiles/eeb_storage.dir/mem_env.cc.o"
  "CMakeFiles/eeb_storage.dir/mem_env.cc.o.d"
  "CMakeFiles/eeb_storage.dir/point_file.cc.o"
  "CMakeFiles/eeb_storage.dir/point_file.cc.o.d"
  "libeeb_storage.a"
  "libeeb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
