file(REMOVE_RECURSE
  "CMakeFiles/eeb_core.dir/cost_model.cc.o"
  "CMakeFiles/eeb_core.dir/cost_model.cc.o.d"
  "CMakeFiles/eeb_core.dir/dbscan.cc.o"
  "CMakeFiles/eeb_core.dir/dbscan.cc.o.d"
  "CMakeFiles/eeb_core.dir/knn_engine.cc.o"
  "CMakeFiles/eeb_core.dir/knn_engine.cc.o.d"
  "CMakeFiles/eeb_core.dir/knn_join.cc.o"
  "CMakeFiles/eeb_core.dir/knn_join.cc.o.d"
  "CMakeFiles/eeb_core.dir/maintenance.cc.o"
  "CMakeFiles/eeb_core.dir/maintenance.cc.o.d"
  "CMakeFiles/eeb_core.dir/quality.cc.o"
  "CMakeFiles/eeb_core.dir/quality.cc.o.d"
  "CMakeFiles/eeb_core.dir/range_search.cc.o"
  "CMakeFiles/eeb_core.dir/range_search.cc.o.d"
  "CMakeFiles/eeb_core.dir/system.cc.o"
  "CMakeFiles/eeb_core.dir/system.cc.o.d"
  "CMakeFiles/eeb_core.dir/workload.cc.o"
  "CMakeFiles/eeb_core.dir/workload.cc.o.d"
  "libeeb_core.a"
  "libeeb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
