file(REMOVE_RECURSE
  "libeeb_core.a"
)
