
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/eeb_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/dbscan.cc" "src/core/CMakeFiles/eeb_core.dir/dbscan.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/dbscan.cc.o.d"
  "/root/repo/src/core/knn_engine.cc" "src/core/CMakeFiles/eeb_core.dir/knn_engine.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/knn_engine.cc.o.d"
  "/root/repo/src/core/knn_join.cc" "src/core/CMakeFiles/eeb_core.dir/knn_join.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/knn_join.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/core/CMakeFiles/eeb_core.dir/maintenance.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/maintenance.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/core/CMakeFiles/eeb_core.dir/quality.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/quality.cc.o.d"
  "/root/repo/src/core/range_search.cc" "src/core/CMakeFiles/eeb_core.dir/range_search.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/range_search.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/eeb_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/system.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/eeb_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/eeb_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eeb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eeb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/eeb_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/eeb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/eeb_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
