# Empty compiler generated dependencies file for eeb_core.
# This may be replaced when dependencies are built.
