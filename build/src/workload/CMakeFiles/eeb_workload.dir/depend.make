# Empty dependencies file for eeb_workload.
# This may be replaced when dependencies are built.
