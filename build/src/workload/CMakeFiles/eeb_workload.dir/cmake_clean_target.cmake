file(REMOVE_RECURSE
  "libeeb_workload.a"
)
