file(REMOVE_RECURSE
  "CMakeFiles/eeb_workload.dir/fvecs.cc.o"
  "CMakeFiles/eeb_workload.dir/fvecs.cc.o.d"
  "CMakeFiles/eeb_workload.dir/generator.cc.o"
  "CMakeFiles/eeb_workload.dir/generator.cc.o.d"
  "CMakeFiles/eeb_workload.dir/registry.cc.o"
  "CMakeFiles/eeb_workload.dir/registry.cc.o.d"
  "libeeb_workload.a"
  "libeeb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
