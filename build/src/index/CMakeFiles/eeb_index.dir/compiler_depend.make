# Empty compiler generated dependencies file for eeb_index.
# This may be replaced when dependencies are built.
