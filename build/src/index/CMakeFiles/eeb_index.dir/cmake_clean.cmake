file(REMOVE_RECURSE
  "CMakeFiles/eeb_index.dir/bptree/bptree.cc.o"
  "CMakeFiles/eeb_index.dir/bptree/bptree.cc.o.d"
  "CMakeFiles/eeb_index.dir/idistance/idistance.cc.o"
  "CMakeFiles/eeb_index.dir/idistance/idistance.cc.o.d"
  "CMakeFiles/eeb_index.dir/lsh/c2lsh.cc.o"
  "CMakeFiles/eeb_index.dir/lsh/c2lsh.cc.o.d"
  "CMakeFiles/eeb_index.dir/lsh/e2lsh.cc.o"
  "CMakeFiles/eeb_index.dir/lsh/e2lsh.cc.o.d"
  "CMakeFiles/eeb_index.dir/lsh/multiprobe.cc.o"
  "CMakeFiles/eeb_index.dir/lsh/multiprobe.cc.o.d"
  "CMakeFiles/eeb_index.dir/lsh/sklsh.cc.o"
  "CMakeFiles/eeb_index.dir/lsh/sklsh.cc.o.d"
  "CMakeFiles/eeb_index.dir/mtree/mtree.cc.o"
  "CMakeFiles/eeb_index.dir/mtree/mtree.cc.o.d"
  "CMakeFiles/eeb_index.dir/rtree/rtree_histogram.cc.o"
  "CMakeFiles/eeb_index.dir/rtree/rtree_histogram.cc.o.d"
  "CMakeFiles/eeb_index.dir/tree_common.cc.o"
  "CMakeFiles/eeb_index.dir/tree_common.cc.o.d"
  "CMakeFiles/eeb_index.dir/vafile/vafile.cc.o"
  "CMakeFiles/eeb_index.dir/vafile/vafile.cc.o.d"
  "CMakeFiles/eeb_index.dir/vptree/vptree.cc.o"
  "CMakeFiles/eeb_index.dir/vptree/vptree.cc.o.d"
  "libeeb_index.a"
  "libeeb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
