file(REMOVE_RECURSE
  "libeeb_index.a"
)
