
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bptree/bptree.cc" "src/index/CMakeFiles/eeb_index.dir/bptree/bptree.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/bptree/bptree.cc.o.d"
  "/root/repo/src/index/idistance/idistance.cc" "src/index/CMakeFiles/eeb_index.dir/idistance/idistance.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/idistance/idistance.cc.o.d"
  "/root/repo/src/index/lsh/c2lsh.cc" "src/index/CMakeFiles/eeb_index.dir/lsh/c2lsh.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/lsh/c2lsh.cc.o.d"
  "/root/repo/src/index/lsh/e2lsh.cc" "src/index/CMakeFiles/eeb_index.dir/lsh/e2lsh.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/lsh/e2lsh.cc.o.d"
  "/root/repo/src/index/lsh/multiprobe.cc" "src/index/CMakeFiles/eeb_index.dir/lsh/multiprobe.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/lsh/multiprobe.cc.o.d"
  "/root/repo/src/index/lsh/sklsh.cc" "src/index/CMakeFiles/eeb_index.dir/lsh/sklsh.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/lsh/sklsh.cc.o.d"
  "/root/repo/src/index/mtree/mtree.cc" "src/index/CMakeFiles/eeb_index.dir/mtree/mtree.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/mtree/mtree.cc.o.d"
  "/root/repo/src/index/rtree/rtree_histogram.cc" "src/index/CMakeFiles/eeb_index.dir/rtree/rtree_histogram.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/rtree/rtree_histogram.cc.o.d"
  "/root/repo/src/index/tree_common.cc" "src/index/CMakeFiles/eeb_index.dir/tree_common.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/tree_common.cc.o.d"
  "/root/repo/src/index/vafile/vafile.cc" "src/index/CMakeFiles/eeb_index.dir/vafile/vafile.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/vafile/vafile.cc.o.d"
  "/root/repo/src/index/vptree/vptree.cc" "src/index/CMakeFiles/eeb_index.dir/vptree/vptree.cc.o" "gcc" "src/index/CMakeFiles/eeb_index.dir/vptree/vptree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eeb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eeb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/eeb_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/eeb_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
