file(REMOVE_RECURSE
  "CMakeFiles/tuning_playground.dir/tuning_playground.cpp.o"
  "CMakeFiles/tuning_playground.dir/tuning_playground.cpp.o.d"
  "tuning_playground"
  "tuning_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
