# Empty compiler generated dependencies file for tuning_playground.
# This may be replaced when dependencies are built.
