file(REMOVE_RECURSE
  "CMakeFiles/maintenance_demo.dir/maintenance_demo.cpp.o"
  "CMakeFiles/maintenance_demo.dir/maintenance_demo.cpp.o.d"
  "maintenance_demo"
  "maintenance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
