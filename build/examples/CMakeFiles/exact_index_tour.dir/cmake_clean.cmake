file(REMOVE_RECURSE
  "CMakeFiles/exact_index_tour.dir/exact_index_tour.cpp.o"
  "CMakeFiles/exact_index_tour.dir/exact_index_tour.cpp.o.d"
  "exact_index_tour"
  "exact_index_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_index_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
