# Empty dependencies file for exact_index_tour.
# This may be replaced when dependencies are built.
