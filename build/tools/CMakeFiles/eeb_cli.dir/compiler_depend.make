# Empty compiler generated dependencies file for eeb_cli.
# This may be replaced when dependencies are built.
