file(REMOVE_RECURSE
  "CMakeFiles/eeb_cli.dir/eeb_cli.cc.o"
  "CMakeFiles/eeb_cli.dir/eeb_cli.cc.o.d"
  "eeb_cli"
  "eeb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
