// eeb_lint core: a token/regex-based invariant checker for the EEB tree.
// No libclang dependency — rules are curated patterns over comment- and
// string-stripped source, which is exactly the right power level for the
// project invariants they enforce:
//
//   dropped-status   a known Status-returning call used as a bare statement
//                    (redundant with [[nodiscard]] Status, but catches code
//                    that is not compiled on this configuration)
//   dropped-admission  a non-blocking admission call (TryPush /
//                    PushWithDeadline / TrySubmit / SubmitWithDeadline)
//                    whose PushOutcome verdict is discarded — the submitted
//                    query can then vanish without being counted as
//                    accepted or shed
//   env-io           raw file opens (fopen / ::open / fstream) in library
//                    code bypassing the storage::Env choke point
//   determinism      std::rand / random_device / mt19937 / time-seeds in
//                    library code instead of common/random.h's seeded Rng;
//                    also std::chrono::system_clock (wall time) where a
//                    duration needs steady_clock (common/timer.h)
//   iostream         std::cout / std::cerr / printf-family output in
//                    library code (reporting belongs to src/obs/)
//   naked-new        new/delete outside the unique_ptr factory idiom
//   raw-ioerror      Status::IOError minted in library code outside
//                    src/storage/ — IOError drives the retry/degradation
//                    policy and must mean "the storage layer failed"
//   header-hygiene   headers without an include guard or with
//                    `using namespace` at header scope
//
// v2 structural passes (tokenizer- and include-graph-driven):
//
//   layering         cross-module #include edges in src/ must appear in
//                    tools/layering.manifest; back-edges and includes of
//                    undeclared modules are errors, and the manifest itself
//                    must be acyclic
//   lock-coverage    a class that declares a Mutex member must annotate
//                    every other mutable member with EEB_GUARDED_BY /
//                    EEB_PT_GUARDED_BY or explicitly opt it out with
//                    EEB_UNGUARDED(reason)
//   hot-path         no allocation or container/string growth inside
//                    `// eeb-hot-begin(<label>)` ... `// eeb-hot-end`
//                    regions (the gen/reduce/refine kernels and ReadPoint)
//   atomic-misuse    load-then-store on the same std::atomic in one
//                    function (a non-atomic read-modify-write unless a
//                    compare_exchange is present), and atomic operations
//                    relying on the implicit seq_cst default instead of an
//                    explicit memory order
//
// Suppressions: `// eeb-lint: allow(<rule>)` on the offending line or the
// line directly above silences one finding; `// eeb-lint: allow-file(<rule>)`
// anywhere silences the rule for the whole file. Both take a comma-separated
// rule list or `all`.

#ifndef EEB_TOOLS_LINT_CORE_H_
#define EEB_TOOLS_LINT_CORE_H_

#include <map>
#include <string>
#include <vector>

namespace eeb::lint {

struct Finding {
  std::string file;     ///< repo-relative path, forward slashes
  int line = 0;         ///< 1-based
  int end_line = 0;     ///< 1-based last line of the span (0 = same as line)
  std::string rule;     ///< rule identifier, e.g. "env-io"
  std::string message;  ///< human-readable explanation
};

/// Parsed tools/layering.manifest: module -> modules it may include.
struct LayeringManifest {
  std::map<std::string, std::vector<std::string>> deps;
  bool loaded = false;
};

/// Parses manifest text ("module: dep dep ..." lines, '#' comments).
/// Returns false and sets `error` on malformed input or an unknown
/// dependency (a dep that is not itself a declared module).
bool ParseLayeringManifest(const std::string& content, LayeringManifest* out,
                           std::string* error);

/// Returns a dependency cycle through the manifest (a module sequence where
/// each entry depends on the next and the last equals the first), or an
/// empty vector if the declared graph is acyclic.
std::vector<std::string> ManifestCycle(const LayeringManifest& manifest);

/// Per-run knobs. Layering only runs when a manifest is supplied.
struct LintOptions {
  const LayeringManifest* layering = nullptr;
};

/// All rule identifiers, in report order.
const std::vector<std::string>& RuleNames();

/// Checks one file's `content`. `path` must be repo-relative with forward
/// slashes — rule scoping (library vs. tool code, allowlisted files) keys
/// off it. Appends findings in line order.
void CheckSource(const std::string& path, const std::string& content,
                 std::vector<Finding>* findings);
void CheckSource(const std::string& path, const std::string& content,
                 const LintOptions& options, std::vector<Finding>* findings);

/// `eeb_lint --fix`: rewrites mechanically fixable findings in `content` —
/// bare default-order atomic operations gain an explicit
/// std::memory_order_seq_cst argument, and unannotated members of
/// mutex-owning classes gain an EEB_UNGUARDED("FIXME: ...") stub to be
/// replaced with a real annotation or justification. Returns true and fills
/// `fixed` when anything changed; idempotent (a second pass is a no-op).
bool ApplyFixes(const std::string& path, const std::string& content,
                std::string* fixed);

/// Renders findings as "<file>:<line>: [<rule>] <message>" lines.
std::string FormatText(const std::vector<Finding>& findings);

/// Renders a JSON report: {"files_checked":N,"counts":{<every rule>:n},
/// "findings":[{file,line,end_line,rule,message},...]}.
std::string FormatJson(const std::vector<Finding>& findings,
                       size_t files_checked);

}  // namespace eeb::lint

#endif  // EEB_TOOLS_LINT_CORE_H_
