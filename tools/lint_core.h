// eeb_lint core: a token/regex-based invariant checker for the EEB tree.
// No libclang dependency — rules are curated patterns over comment- and
// string-stripped source, which is exactly the right power level for the
// project invariants they enforce:
//
//   dropped-status   a known Status-returning call used as a bare statement
//                    (redundant with [[nodiscard]] Status, but catches code
//                    that is not compiled on this configuration)
//   env-io           raw file opens (fopen / ::open / fstream) in library
//                    code bypassing the storage::Env choke point
//   determinism      std::rand / random_device / mt19937 / time-seeds in
//                    library code instead of common/random.h's seeded Rng;
//                    also std::chrono::system_clock (wall time) where a
//                    duration needs steady_clock (common/timer.h)
//   iostream         std::cout / std::cerr / printf-family output in
//                    library code (reporting belongs to src/obs/)
//   naked-new        new/delete outside the unique_ptr factory idiom
//   raw-ioerror      Status::IOError minted in library code outside
//                    src/storage/ — IOError drives the retry/degradation
//                    policy and must mean "the storage layer failed"
//   header-hygiene   headers without an include guard or with
//                    `using namespace` at header scope
//
// Suppressions: `// eeb-lint: allow(<rule>)` on the offending line or the
// line directly above silences one finding; `// eeb-lint: allow-file(<rule>)`
// anywhere silences the rule for the whole file. Both take a comma-separated
// rule list or `all`.

#ifndef EEB_TOOLS_LINT_CORE_H_
#define EEB_TOOLS_LINT_CORE_H_

#include <string>
#include <vector>

namespace eeb::lint {

struct Finding {
  std::string file;     ///< repo-relative path, forward slashes
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule identifier, e.g. "env-io"
  std::string message;  ///< human-readable explanation
};

/// All rule identifiers, in report order.
const std::vector<std::string>& RuleNames();

/// Checks one file's `content`. `path` must be repo-relative with forward
/// slashes — rule scoping (library vs. tool code, allowlisted files) keys
/// off it. Appends findings in line order.
void CheckSource(const std::string& path, const std::string& content,
                 std::vector<Finding>* findings);

/// Renders findings as "<file>:<line>: [<rule>] <message>" lines.
std::string FormatText(const std::vector<Finding>& findings);

/// Renders findings as a JSON array of {file, line, rule, message}.
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace eeb::lint

#endif  // EEB_TOOLS_LINT_CORE_H_
