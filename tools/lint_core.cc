#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>

namespace eeb::lint {
namespace {

// ------------------------------------------------------------ preprocessing

/// One source line split into executable code and its comment text.
struct Line {
  std::string code;     ///< comments and string/char literals blanked out
  std::string comment;  ///< text of // and /* */ comments on this line
};

/// Strips comments and literals while preserving the line structure, so rule
/// patterns never fire inside strings ("delete from table") or comments, and
/// suppression directives are read from comment text only.
std::vector<Line> Preprocess(const std::string& content) {
  std::vector<Line> lines(1);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string literals do not cross lines in valid code.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    Line& line = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          line.code += '"';
        } else if (c == '\'') {
          state = State::kChar;
          line.code += '\'';
        } else {
          line.code += c;
        }
        break;
      case State::kLineComment:
        line.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          line.code += '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line.code += '\'';
        }
        break;
    }
  }
  return lines;
}

// ------------------------------------------------------------- suppressions

struct Suppressions {
  std::vector<std::set<std::string>> per_line;  ///< allow(...) by line index
  std::set<std::string> file_wide;              ///< allow-file(...)
};

void ParseRuleList(const std::string& list, std::set<std::string>* out) {
  std::string item;
  std::istringstream in(list);
  while (std::getline(in, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               item.end());
    if (!item.empty()) out->insert(item);
  }
}

Suppressions CollectSuppressions(const std::vector<Line>& lines) {
  static const std::regex kAllow(R"(eeb-lint:\s*allow\(([^)]*)\))");
  static const std::regex kAllowFile(R"(eeb-lint:\s*allow-file\(([^)]*)\))");
  Suppressions sup;
  sup.per_line.resize(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i].comment, m, kAllow)) {
      ParseRuleList(m[1].str(), &sup.per_line[i]);
    }
    if (std::regex_search(lines[i].comment, m, kAllowFile)) {
      ParseRuleList(m[1].str(), &sup.file_wide);
    }
  }
  return sup;
}

bool Suppressed(const Suppressions& sup, size_t line_index,
                const std::string& rule) {
  auto allows = [&](const std::set<std::string>& s) {
    return s.count(rule) > 0 || s.count("all") > 0;
  };
  if (allows(sup.file_wide)) return true;
  if (allows(sup.per_line[line_index])) return true;
  // A directive on the line directly above covers this line.
  if (line_index > 0 && allows(sup.per_line[line_index - 1])) return true;
  return false;
}

// ------------------------------------------------------------------ scoping

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Library code: the invariants about I/O, determinism, output channels, and
/// ownership bind here. Tools, benches, tests, and examples are entry points
/// that may print, parse ad-hoc files, and use their own randomness.
bool IsLibraryCode(const std::string& path) { return StartsWith(path, "src/"); }

bool IsHeader(const std::string& path) {
  return path.size() > 2 && (path.substr(path.size() - 2) == ".h" ||
                             (path.size() > 4 &&
                              path.substr(path.size() - 4) == ".hpp"));
}

// -------------------------------------------------------------------- rules

void AddFinding(std::vector<Finding>* findings, const Suppressions& sup,
                const std::string& path, size_t line_index,
                const std::string& rule, const std::string& message) {
  if (Suppressed(sup, line_index, rule)) return;
  findings->push_back(
      {path, static_cast<int>(line_index) + 1, rule, message});
}

/// dropped-status: a call to a method known to return eeb::Status used as a
/// bare statement. The statement is the flagged line joined with up to four
/// continuation lines (until ';'), and is exonerated by anything that
/// consumes the result: assignment, return, a macro wrapper, .ok(),
/// IgnoreError(), or a test assertion.
void CheckDroppedStatus(const std::string& path,
                        const std::vector<Line>& lines,
                        const Suppressions& sup,
                        std::vector<Finding>* findings) {
  // Methods whose name unambiguously means "returns Status" in this tree.
  // (Append and WriteJsonl are deliberately absent: Dataset::Append returns
  // a PointId and Tracer::WriteJsonl has a void ostream overload, either of
  // which would drown the rule in false positives — the [[nodiscard]]
  // attribute is the authoritative enforcement; this rule is the redundant
  // net for code not compiled in the current configuration.)
  static const std::regex kCall(
      R"(^\s*[A-Za-z_][\w:\.\[\]\(\)\->]*(->|\.))"
      R"((Close|Flush|Sync|DeleteFile)\s*\()");
  static const std::regex kFreeCall(
      R"(^\s*(::)?(\w+::)*(WriteStringToFile|CleanupIfError)\s*\()");
  static const std::regex kConsumed(
      R"(=|\breturn\b|\.ok\s*\(|IgnoreError|RETURN_IF_ERROR|RecordIfError)"
      R"(|EXPECT_|ASSERT_|\bif\b|\bwhile\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (!std::regex_search(code, kCall) &&
        !std::regex_search(code, kFreeCall)) {
      continue;
    }
    std::string stmt = code;
    for (size_t j = i + 1;
         j < lines.size() && j < i + 5 && stmt.find(';') == std::string::npos;
         ++j) {
      stmt += ' ';
      stmt += lines[j].code;
    }
    if (std::regex_search(stmt, kConsumed)) continue;
    AddFinding(findings, sup, path, i, "dropped-status",
               "result of a Status-returning call is silently dropped; "
               "propagate it, test .ok(), or acknowledge with IgnoreError()");
  }
}

/// env-io: raw file opens in library code. All disk access goes through
/// storage::Env so that I/O accounting has a single choke point; the POSIX
/// Env implementation itself is the allowlisted bottom of that stack.
void CheckEnvIo(const std::string& path, const std::vector<Line>& lines,
                const Suppressions& sup, std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  if (path == "src/storage/env.cc") return;  // the Env implementation
  static const std::regex kOpen(
      R"(\b(fopen|freopen|fdopen|creat|mkstemp)\s*\()"
      R"(|::open\s*\(|\.open\s*\()"
      R"(|\bstd::(i|o)?fstream\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kOpen)) {
      AddFinding(findings, sup, path, i, "env-io",
                 "raw file open bypasses storage::Env; route disk access "
                 "through Env so I/O stays accountable");
    }
  }
}

/// determinism: ad-hoc randomness in library code. Benchmark tables must
/// reproduce bit-for-bit, so every randomized component takes a seed and
/// draws from common/random.h's Rng.
void CheckDeterminism(const std::string& path, const std::vector<Line>& lines,
                      const Suppressions& sup,
                      std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  if (path == "src/common/random.h") return;  // the sanctioned generator
  static const std::regex kRandom(
      R"(\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b|\bmt19937\b)"
      R"(|\bdrand48\b|\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kRandom)) {
      AddFinding(findings, sup, path, i, "determinism",
                 "non-seeded/platform-dependent randomness in library code; "
                 "use eeb::Rng from common/random.h with an explicit seed");
    }
  }
  // system_clock is wall time: it jumps on NTP steps and varies across
  // machines, so durations measured with it are non-deterministic and
  // occasionally negative. Library code measures durations with
  // steady_clock (common/timer.h); wall timestamps belong in tools.
  static const std::regex kWallClock(R"(\bsystem_clock\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kWallClock)) {
      AddFinding(findings, sup, path, i, "determinism",
                 "std::chrono::system_clock in library code; measure "
                 "durations with steady_clock (common/timer.h) — wall-clock "
                 "timestamps belong in tools");
    }
  }
}

/// iostream: direct terminal output in library code. Reporting belongs to
/// src/obs/ instruments and injectable std::ostream sinks; a library that
/// prints cannot be embedded.
void CheckIostream(const std::string& path, const std::vector<Line>& lines,
                   const Suppressions& sup, std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  static const std::regex kOutput(
      R"(\bstd::(cout|cerr|clog)\b|#\s*include\s*<iostream>)"
      R"(|\b(printf|fprintf|puts|fputs)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    // #include lives in code text; re-add it for the include pattern.
    if (std::regex_search(code, kOutput)) {
      AddFinding(findings, sup, path, i, "iostream",
                 "terminal output in library code; record through src/obs/ "
                 "instruments or write to an injectable std::ostream sink");
    }
  }
}

/// naked-new: manual memory management outside the factory idiom. A `new`
/// immediately owned by a smart pointer on the same statement line
/// (unique_ptr<T> p(new T), out->reset(new T)) is the project's sanctioned
/// form for private-constructor factories; anything else leaks on the error
/// path. `delete` has no sanctioned form ( `= delete` declarations aside).
void CheckNakedNew(const std::string& path, const std::vector<Line>& lines,
                   const Suppressions& sup, std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kOwned(
      R"(unique_ptr|shared_ptr|make_unique|make_shared|\breset\s*\()");
  static const std::regex kDelete(R"(\bdelete\b(\s*\[\s*\])?)");
  static const std::regex kDeletedFn(R"(=\s*delete\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    // A wrapped statement puts the owning unique_ptr/reset( on the line
    // above the `new`; accept ownership on either line.
    const bool owned =
        std::regex_search(code, kOwned) ||
        (i > 0 && std::regex_search(lines[i - 1].code, kOwned));
    if (std::regex_search(code, kNew) && !owned) {
      AddFinding(findings, sup, path, i, "naked-new",
                 "`new` outside the smart-pointer factory idiom; wrap the "
                 "allocation in unique_ptr on the same statement");
    }
    if (std::regex_search(code, kDelete) &&
        !std::regex_search(code, kDeletedFn)) {
      AddFinding(findings, sup, path, i, "naked-new",
                 "manual `delete`; ownership belongs to smart pointers");
    }
  }
}

/// raw-ioerror: a Status::IOError constructed in library code outside
/// src/storage/. IOError means "the storage layer failed"; minting one
/// elsewhere bypasses the retry/degradation machinery keyed on that code
/// (RetryingEnv retries IOError, the engine degrades on it) and makes a
/// logic failure look transient. Use InvalidArgument/NotSupported/etc., or
/// propagate the storage layer's own status.
void CheckRawIoError(const std::string& path, const std::vector<Line>& lines,
                     const Suppressions& sup,
                     std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  if (StartsWith(path, "src/storage/")) return;  // the I/O layer itself
  static const std::regex kIoError(R"(\bStatus::IOError\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kIoError)) {
      AddFinding(findings, sup, path, i, "raw-ioerror",
                 "Status::IOError minted outside src/storage/; IOError "
                 "drives retry/degradation policy — propagate the storage "
                 "status or use a non-I/O error code");
    }
  }
}

/// header-hygiene: every header needs an include guard (or #pragma once),
/// and `using namespace` in a header leaks into every includer.
void CheckHeaderHygiene(const std::string& path,
                        const std::vector<Line>& lines,
                        const Suppressions& sup,
                        std::vector<Finding>* findings) {
  if (!IsHeader(path)) return;
  static const std::regex kGuard(R"(#\s*(pragma\s+once|ifndef)\b)");
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  bool has_guard = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kGuard)) has_guard = true;
    if (std::regex_search(lines[i].code, kUsingNamespace)) {
      AddFinding(findings, sup, path, i, "header-hygiene",
                 "`using namespace` in a header leaks into every includer");
    }
  }
  if (!has_guard && !lines.empty()) {
    AddFinding(findings, sup, path, 0, "header-hygiene",
               "header has neither an include guard nor #pragma once");
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "dropped-status", "env-io",    "determinism",    "iostream",
      "naked-new",      "raw-ioerror", "header-hygiene"};
  return kRules;
}

void CheckSource(const std::string& path, const std::string& content,
                 std::vector<Finding>* findings) {
  const std::vector<Line> lines = Preprocess(content);
  const Suppressions sup = CollectSuppressions(lines);
  const size_t first = findings->size();
  CheckDroppedStatus(path, lines, sup, findings);
  CheckEnvIo(path, lines, sup, findings);
  CheckDeterminism(path, lines, sup, findings);
  CheckIostream(path, lines, sup, findings);
  CheckNakedNew(path, lines, sup, findings);
  CheckRawIoError(path, lines, sup, findings);
  CheckHeaderHygiene(path, lines, sup, findings);
  std::sort(findings->begin() + first, findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\":\"" + JsonEscape(f.file) +
           "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
           JsonEscape(f.rule) + "\",\"message\":\"" + JsonEscape(f.message) +
           "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace eeb::lint
