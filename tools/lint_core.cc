#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <regex>
#include <set>
#include <sstream>

namespace eeb::lint {
namespace {

// ------------------------------------------------------------ preprocessing

/// One source line split into executable code and its comment text.
struct Line {
  std::string code;     ///< comments and string/char literals blanked out
  std::string comment;  ///< text of // and /* */ comments on this line
};

/// Strips comments and literals while preserving the line structure, so rule
/// patterns never fire inside strings ("delete from table") or comments, and
/// suppression directives are read from comment text only.
std::vector<Line> Preprocess(const std::string& content) {
  std::vector<Line> lines(1);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string literals do not cross lines in valid code.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    Line& line = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          line.code += '"';
        } else if (c == '\'') {
          state = State::kChar;
          line.code += '\'';
        } else {
          line.code += c;
        }
        break;
      case State::kLineComment:
        line.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          line.code += '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line.code += '\'';
        }
        break;
    }
  }
  return lines;
}

// ------------------------------------------------------------- suppressions

struct Suppressions {
  std::vector<std::set<std::string>> per_line;  ///< allow(...) by line index
  std::set<std::string> file_wide;              ///< allow-file(...)
};

void ParseRuleList(const std::string& list, std::set<std::string>* out) {
  std::string item;
  std::istringstream in(list);
  while (std::getline(in, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               item.end());
    if (!item.empty()) out->insert(item);
  }
}

Suppressions CollectSuppressions(const std::vector<Line>& lines) {
  static const std::regex kAllow(R"(eeb-lint:\s*allow\(([^)]*)\))");
  static const std::regex kAllowFile(R"(eeb-lint:\s*allow-file\(([^)]*)\))");
  Suppressions sup;
  sup.per_line.resize(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i].comment, m, kAllow)) {
      ParseRuleList(m[1].str(), &sup.per_line[i]);
    }
    if (std::regex_search(lines[i].comment, m, kAllowFile)) {
      ParseRuleList(m[1].str(), &sup.file_wide);
    }
  }
  return sup;
}

bool Suppressed(const Suppressions& sup, size_t line_index,
                const std::string& rule) {
  auto allows = [&](const std::set<std::string>& s) {
    return s.count(rule) > 0 || s.count("all") > 0;
  };
  if (allows(sup.file_wide)) return true;
  if (line_index >= sup.per_line.size()) return false;
  if (allows(sup.per_line[line_index])) return true;
  // A directive on the line directly above covers this line.
  if (line_index > 0 && allows(sup.per_line[line_index - 1])) return true;
  return false;
}

// ------------------------------------------------------------------ scoping

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Library code: the invariants about I/O, determinism, output channels, and
/// ownership bind here. Tools, benches, tests, and examples are entry points
/// that may print, parse ad-hoc files, and use their own randomness.
bool IsLibraryCode(const std::string& path) { return StartsWith(path, "src/"); }

bool IsHeader(const std::string& path) {
  return path.size() > 2 && (path.substr(path.size() - 2) == ".h" ||
                             (path.size() > 4 &&
                              path.substr(path.size() - 4) == ".hpp"));
}

// -------------------------------------------------------------------- rules

void AddFinding(std::vector<Finding>* findings, const Suppressions& sup,
                const std::string& path, size_t line_index,
                const std::string& rule, const std::string& message) {
  if (Suppressed(sup, line_index, rule)) return;
  findings->push_back({path, static_cast<int>(line_index) + 1,
                       static_cast<int>(line_index) + 1, rule, message});
}

/// Multi-line finding (a whole member statement, an unclosed region). The
/// suppression directive is honored on the first line of the span.
void AddFindingSpan(std::vector<Finding>* findings, const Suppressions& sup,
                    const std::string& path, size_t first_line_index,
                    size_t last_line_index, const std::string& rule,
                    const std::string& message) {
  if (Suppressed(sup, first_line_index, rule)) return;
  findings->push_back({path, static_cast<int>(first_line_index) + 1,
                       static_cast<int>(last_line_index) + 1, rule, message});
}

/// dropped-status: a call to a method known to return eeb::Status used as a
/// bare statement. The statement is the flagged line joined with up to four
/// continuation lines (until ';'), and is exonerated by anything that
/// consumes the result: assignment, return, a macro wrapper, .ok(),
/// IgnoreError(), or a test assertion.
void CheckDroppedStatus(const std::string& path,
                        const std::vector<Line>& lines,
                        const Suppressions& sup,
                        std::vector<Finding>* findings) {
  // Methods whose name unambiguously means "returns Status" in this tree.
  // (Append and WriteJsonl are deliberately absent: Dataset::Append returns
  // a PointId and Tracer::WriteJsonl has a void ostream overload, either of
  // which would drown the rule in false positives — the [[nodiscard]]
  // attribute is the authoritative enforcement; this rule is the redundant
  // net for code not compiled in the current configuration.)
  static const std::regex kCall(
      R"(^\s*[A-Za-z_][\w:\.\[\]\(\)\->]*(->|\.))"
      R"((Close|Flush|Sync|DeleteFile)\s*\()");
  static const std::regex kFreeCall(
      R"(^\s*(::)?(\w+::)*(WriteStringToFile|CleanupIfError)\s*\()");
  static const std::regex kConsumed(
      R"(=|\breturn\b|\.ok\s*\(|IgnoreError|RETURN_IF_ERROR|RecordIfError)"
      R"(|EXPECT_|ASSERT_|\bif\b|\bwhile\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (!std::regex_search(code, kCall) &&
        !std::regex_search(code, kFreeCall)) {
      continue;
    }
    std::string stmt = code;
    for (size_t j = i + 1;
         j < lines.size() && j < i + 5 && stmt.find(';') == std::string::npos;
         ++j) {
      stmt += ' ';
      stmt += lines[j].code;
    }
    if (std::regex_search(stmt, kConsumed)) continue;
    AddFinding(findings, sup, path, i, "dropped-status",
               "result of a Status-returning call is silently dropped; "
               "propagate it, test .ok(), or acknowledge with IgnoreError()");
  }
}

/// dropped-admission: a call to a non-blocking admission method (TryPush /
/// PushWithDeadline on BoundedTaskQueue, TrySubmit / SubmitWithDeadline on
/// ThreadPool) used as a bare statement. These return a PushResult verdict,
/// not a Status, so [[nodiscard]] on Status does not cover them — and a
/// dropped verdict means a query silently vanishes: the caller can no
/// longer tell an accepted task from a shed one, which breaks the
/// completed + shed == submitted reconciliation invariant (see
/// docs/ROBUSTNESS.md). A result is consumed by assignment, return,
/// switch, a condition, or a test assertion.
void CheckDroppedAdmission(const std::string& path,
                           const std::vector<Line>& lines,
                           const Suppressions& sup,
                           std::vector<Finding>* findings) {
  // Library code only: tests and tools drop verdicts deliberately (filling
  // a queue to force kFull), and [[nodiscard]] already warns there.
  if (!IsLibraryCode(path)) return;
  static const std::regex kCall(
      R"(^\s*[A-Za-z_][\w:\.\[\]\(\)\->]*(->|\.))"
      R"((TryPush|PushWithDeadline|TrySubmit|SubmitWithDeadline)\s*\()");
  static const std::regex kConsumed(
      R"(=|\breturn\b|\bswitch\b|\bcase\b|\bif\b|\bwhile\b|\bfor\b)"
      R"(|EXPECT_|ASSERT_)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (!std::regex_search(code, kCall)) continue;
    std::string stmt = code;
    for (size_t j = i + 1;
         j < lines.size() && j < i + 5 && stmt.find(';') == std::string::npos;
         ++j) {
      stmt += ' ';
      stmt += lines[j].code;
    }
    // A wrapped assignment/return puts the consumer on an earlier line
    // (`const PushOutcome outcome =` above the call); join backwards until
    // the previous statement's end so it exonerates the call.
    for (size_t j = i; j > 0 && i - j < 4; --j) {
      std::string prev = lines[j - 1].code;
      while (!prev.empty() &&
             std::isspace(static_cast<unsigned char>(prev.back()))) {
        prev.pop_back();
      }
      if (prev.empty() || prev.back() == ';' || prev.back() == '{' ||
          prev.back() == '}') {
        break;
      }
      stmt = prev + ' ' + stmt;
    }
    if (std::regex_search(stmt, kConsumed)) continue;
    AddFinding(findings, sup, path, i, "dropped-admission",
               "admission verdict (PushOutcome) is silently dropped; a query "
               "submitted this way can vanish without being counted as "
               "accepted or shed — branch on the result");
  }
}

/// env-io: raw file opens in library code. All disk access goes through
/// storage::Env so that I/O accounting has a single choke point; the POSIX
/// Env implementation itself is the allowlisted bottom of that stack.
void CheckEnvIo(const std::string& path, const std::vector<Line>& lines,
                const Suppressions& sup, std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  if (path == "src/storage/env.cc") return;  // the Env implementation
  static const std::regex kOpen(
      R"(\b(fopen|freopen|fdopen|creat|mkstemp)\s*\()"
      R"(|::open\s*\(|\.open\s*\()"
      R"(|\bstd::(i|o)?fstream\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kOpen)) {
      AddFinding(findings, sup, path, i, "env-io",
                 "raw file open bypasses storage::Env; route disk access "
                 "through Env so I/O stays accountable");
    }
  }
}

/// determinism: ad-hoc randomness in library code. Benchmark tables must
/// reproduce bit-for-bit, so every randomized component takes a seed and
/// draws from common/random.h's Rng.
void CheckDeterminism(const std::string& path, const std::vector<Line>& lines,
                      const Suppressions& sup,
                      std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  if (path == "src/common/random.h") return;  // the sanctioned generator
  static const std::regex kRandom(
      R"(\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b|\bmt19937\b)"
      R"(|\bdrand48\b|\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kRandom)) {
      AddFinding(findings, sup, path, i, "determinism",
                 "non-seeded/platform-dependent randomness in library code; "
                 "use eeb::Rng from common/random.h with an explicit seed");
    }
  }
  // system_clock is wall time: it jumps on NTP steps and varies across
  // machines, so durations measured with it are non-deterministic and
  // occasionally negative. Library code measures durations with
  // steady_clock (common/timer.h); wall timestamps belong in tools.
  static const std::regex kWallClock(R"(\bsystem_clock\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kWallClock)) {
      AddFinding(findings, sup, path, i, "determinism",
                 "std::chrono::system_clock in library code; measure "
                 "durations with steady_clock (common/timer.h) — wall-clock "
                 "timestamps belong in tools");
    }
  }
}

/// iostream: direct terminal output in library code. Reporting belongs to
/// src/obs/ instruments and injectable std::ostream sinks; a library that
/// prints cannot be embedded.
void CheckIostream(const std::string& path, const std::vector<Line>& lines,
                   const Suppressions& sup, std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  static const std::regex kOutput(
      R"(\bstd::(cout|cerr|clog)\b|#\s*include\s*<iostream>)"
      R"(|\b(printf|fprintf|puts|fputs)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    // #include lives in code text; re-add it for the include pattern.
    if (std::regex_search(code, kOutput)) {
      AddFinding(findings, sup, path, i, "iostream",
                 "terminal output in library code; record through src/obs/ "
                 "instruments or write to an injectable std::ostream sink");
    }
  }
}

/// naked-new: manual memory management outside the factory idiom. A `new`
/// immediately owned by a smart pointer on the same statement line
/// (unique_ptr<T> p(new T), out->reset(new T)) is the project's sanctioned
/// form for private-constructor factories; anything else leaks on the error
/// path. `delete` has no sanctioned form ( `= delete` declarations aside).
void CheckNakedNew(const std::string& path, const std::vector<Line>& lines,
                   const Suppressions& sup, std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kOwned(
      R"(unique_ptr|shared_ptr|make_unique|make_shared|\breset\s*\()");
  static const std::regex kDelete(R"(\bdelete\b(\s*\[\s*\])?)");
  static const std::regex kDeletedFn(R"(=\s*delete\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    // A wrapped statement puts the owning unique_ptr/reset( on the line
    // above the `new`; accept ownership on either line.
    const bool owned =
        std::regex_search(code, kOwned) ||
        (i > 0 && std::regex_search(lines[i - 1].code, kOwned));
    if (std::regex_search(code, kNew) && !owned) {
      AddFinding(findings, sup, path, i, "naked-new",
                 "`new` outside the smart-pointer factory idiom; wrap the "
                 "allocation in unique_ptr on the same statement");
    }
    if (std::regex_search(code, kDelete) &&
        !std::regex_search(code, kDeletedFn)) {
      AddFinding(findings, sup, path, i, "naked-new",
                 "manual `delete`; ownership belongs to smart pointers");
    }
  }
}

/// raw-ioerror: a Status::IOError constructed in library code outside
/// src/storage/. IOError means "the storage layer failed"; minting one
/// elsewhere bypasses the retry/degradation machinery keyed on that code
/// (RetryingEnv retries IOError, the engine degrades on it) and makes a
/// logic failure look transient. Use InvalidArgument/NotSupported/etc., or
/// propagate the storage layer's own status.
void CheckRawIoError(const std::string& path, const std::vector<Line>& lines,
                     const Suppressions& sup,
                     std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  if (StartsWith(path, "src/storage/")) return;  // the I/O layer itself
  static const std::regex kIoError(R"(\bStatus::IOError\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kIoError)) {
      AddFinding(findings, sup, path, i, "raw-ioerror",
                 "Status::IOError minted outside src/storage/; IOError "
                 "drives retry/degradation policy — propagate the storage "
                 "status or use a non-I/O error code");
    }
  }
}

/// header-hygiene: every header needs an include guard (or #pragma once),
/// and `using namespace` in a header leaks into every includer.
void CheckHeaderHygiene(const std::string& path,
                        const std::vector<Line>& lines,
                        const Suppressions& sup,
                        std::vector<Finding>* findings) {
  if (!IsHeader(path)) return;
  static const std::regex kGuard(R"(#\s*(pragma\s+once|ifndef)\b)");
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  bool has_guard = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kGuard)) has_guard = true;
    if (std::regex_search(lines[i].code, kUsingNamespace)) {
      AddFinding(findings, sup, path, i, "header-hygiene",
                 "`using namespace` in a header leaks into every includer");
    }
  }
  if (!has_guard && !lines.empty()) {
    AddFinding(findings, sup, path, 0, "header-hygiene",
               "header has neither an include guard nor #pragma once");
  }
}

// ------------------------------------------------------ structural scanner
//
// The v2 passes need more shape than single-line regexes give: which
// statements are class members, and which text ranges are function bodies.
// The scanner walks the blanked code (comments and literals already
// stripped by Preprocess) tracking brace and paren depth, and classifies
// each '{' from the statement segment preceding it: class/struct bodies
// collect member statements, function bodies (constructor init lists and
// annotated signatures included) become opaque ranges for the atomic pass,
// and brace initializers are consumed into the surrounding statement.

struct Statement {
  std::string text;      ///< blanked text, terminating ';' excluded
  size_t first_line = 0; ///< 0-based line index of the first token
  size_t last_line = 0;  ///< 0-based line index of the terminating ';'
};

struct ClassBody {
  std::vector<Statement> members;
};

struct Structure {
  std::vector<ClassBody> classes;
  /// Outermost function bodies as [begin, end) offsets into the blank text
  /// (nested lambdas and local classes stay part of the enclosing range).
  std::vector<std::pair<size_t, size_t>> functions;
};

std::string TrimRight(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

enum class BraceKind { kOther, kNamespace, kClass, kFunction, kInit };

BraceKind ClassifyBrace(const std::string& segment) {
  // "template <class T>" would trip the class-head check below; drop the
  // parameter list (one nesting level is enough for this tree).
  static const std::regex kTemplateIntro(
      R"(\btemplate\s*<[^<>]*(<[^<>]*>)?[^<>]*>)");
  static const std::regex kEnum(R"(\benum\b)");
  static const std::regex kNamespace(R"(\bnamespace\b)");
  // class/struct/union followed only by names, attributes/annotation macros
  // (paren groups), and an optional base clause up to the '{'.
  static const std::regex kClassHead(
      R"(\b(class|struct|union)\b([^;=(){}]|\([^()]*\))*$)");
  // Function signatures end in ')' once trailing qualifiers, annotation
  // macros, and trailing-return types are stripped.
  static const std::regex kSignatureTail(
      R"(((const|noexcept|override|final|try|mutable))"
      R"(|(->\s*[\w:<>,*&\s\[\]]+))"
      R"(|(EEB_\w+(\s*\((\([^()]*\)|[^()])*\))?))\s*$)");
  std::string s = TrimRight(segment);
  if (s.empty()) return BraceKind::kOther;
  if (std::regex_search(s, kEnum)) return BraceKind::kOther;
  s = std::regex_replace(s, kTemplateIntro, " ");
  if (std::regex_search(s, kClassHead)) return BraceKind::kClass;
  if (std::regex_search(s, kNamespace)) return BraceKind::kNamespace;
  std::string prev;
  do {
    prev = s;
    s = TrimRight(std::regex_replace(s, kSignatureTail, ""));
  } while (prev != s);
  if (!s.empty() && s.back() == ')') return BraceKind::kFunction;
  return BraceKind::kInit;
}

Structure ScanStructure(const std::string& blank) {
  Structure out;
  struct Scope {
    BraceKind kind;
    size_t class_index = 0;  ///< into out.classes when kind == kClass
    size_t fn_begin = 0;     ///< body start offset when kind == kFunction
    bool outermost_fn = false;
  };
  std::vector<Scope> stack;
  std::string segment;
  size_t segment_line = 0;
  bool segment_has_content = false;
  int paren_depth = 0;
  int fn_nesting = 0;
  size_t line = 0;

  auto reset_segment = [&] {
    segment.clear();
    segment_has_content = false;
  };
  auto append = [&](char c) {
    if (!segment_has_content &&
        !std::isspace(static_cast<unsigned char>(c))) {
      segment_line = line;
      segment_has_content = true;
    }
    segment += c;
  };

  size_t i = 0;
  while (i < blank.size()) {
    const char c = blank[i];
    if (c == '\n') {
      ++line;
      segment += ' ';
      ++i;
      continue;
    }
    if (c == '(') {
      ++paren_depth;
      append(c);
      ++i;
      continue;
    }
    if (c == ')') {
      if (paren_depth > 0) --paren_depth;
      append(c);
      ++i;
      continue;
    }
    if (paren_depth > 0 || (c != '{' && c != '}' && c != ';')) {
      append(c);
      ++i;
      continue;
    }
    if (c == ';') {
      if (segment_has_content && !stack.empty() &&
          stack.back().kind == BraceKind::kClass && fn_nesting == 0) {
        out.classes[stack.back().class_index].members.push_back(
            {segment, segment_line, line});
      }
      reset_segment();
      ++i;
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) {
        const Scope top = stack.back();
        stack.pop_back();
        if (top.kind == BraceKind::kFunction) {
          --fn_nesting;
          if (top.outermost_fn) out.functions.push_back({top.fn_begin, i});
        }
      }
      reset_segment();
      ++i;
      continue;
    }
    // '{' at paren depth 0: classify from the preceding segment. Inside a
    // function body everything is opaque — depth-track only.
    const BraceKind kind =
        fn_nesting > 0 ? BraceKind::kOther : ClassifyBrace(segment);
    if (kind == BraceKind::kInit) {
      // Brace initializer: consume through the matching '}' into the
      // statement so `Rng rng_{42};` stays one member statement.
      int depth = 0;
      while (i < blank.size()) {
        const char b = blank[i];
        if (b == '\n') {
          ++line;
          segment += ' ';
        } else {
          append(b);
          if (b == '{') ++depth;
          if (b == '}') {
            --depth;
            if (depth == 0) {
              ++i;
              break;
            }
          }
        }
        ++i;
      }
      continue;
    }
    Scope scope;
    scope.kind = kind;
    if (kind == BraceKind::kClass) {
      scope.class_index = out.classes.size();
      out.classes.emplace_back();
    } else if (kind == BraceKind::kFunction) {
      scope.fn_begin = i + 1;
      scope.outermost_fn = fn_nesting == 0;
      ++fn_nesting;
    }
    stack.push_back(scope);
    reset_segment();
    ++i;
  }
  return out;
}

/// Joins the blanked code lines back into one text, recording each line's
/// start offset so span positions can be mapped back to line indices.
std::string JoinBlank(const std::vector<Line>& lines,
                      std::vector<size_t>* line_starts) {
  std::string blank;
  for (const Line& l : lines) {
    line_starts->push_back(blank.size());
    blank += l.code;
    blank += '\n';
  }
  return blank;
}

size_t LineAt(const std::vector<size_t>& line_starts, size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return it == line_starts.begin()
             ? 0
             : static_cast<size_t>(it - line_starts.begin()) - 1;
}

// --------------------------------------------------- lock-coverage (v2)

/// Declares-a-lock detector. `Mutex m_;` and `std::mutex m_;` (with or
/// without `mutable`) match; `MutexLock` (no space before the name) and
/// `Mutex& mu_` references (borrowed, not owned) do not.
bool DeclaresMutexMember(const std::string& stmt) {
  static const std::regex kMutexMember(
      R"(\b((std::)?mutex|Mutex)\s+[A-Za-z_]\w*)");
  return std::regex_search(stmt, kMutexMember);
}

/// lock-coverage: a class that owns a Mutex is a concurrency boundary, so
/// every other mutable member must either be EEB_GUARDED_BY one of its
/// locks or carry an explicit EEB_UNGUARDED(reason) opt-out. Members whose
/// type synchronizes itself (atomics, condition variables, other locks) and
/// immutable members (const/constexpr/static) are exempt.
void CheckLockCoverage(const std::string& path,
                       const std::vector<Line>& lines,
                       const Suppressions& sup,
                       std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  std::vector<size_t> line_starts;
  const std::string blank = JoinBlank(lines, &line_starts);
  const Structure structure = ScanStructure(blank);
  static const std::regex kSkipStmt(R"(\b(using|typedef|friend)\b)");
  static const std::regex kAnnotated(
      R"(\bEEB_(GUARDED_BY|PT_GUARDED_BY|UNGUARDED)\b)");
  static const std::regex kExemptType(
      R"(\b(static|constexpr|const|atomic|CondVar|condition_variable)"
      R"(|thread|once_flag)\b)");
  static const std::regex kMemberName(R"(\b([A-Za-z]\w*_)\s*($|=|\{|\[|EEB_))");
  for (const ClassBody& cls : structure.classes) {
    bool has_mutex = false;
    for (const Statement& m : cls.members) {
      if (DeclaresMutexMember(m.text)) {
        has_mutex = true;
        break;
      }
    }
    if (!has_mutex) continue;
    for (const Statement& m : cls.members) {
      if (DeclaresMutexMember(m.text)) continue;  // the lock itself
      if (std::regex_search(m.text, kSkipStmt)) continue;
      std::smatch name;
      if (!std::regex_search(m.text, name, kMemberName)) continue;
      if (std::regex_search(m.text, kAnnotated)) continue;
      if (std::regex_search(m.text, kExemptType)) continue;
      AddFindingSpan(
          findings, sup, path, m.first_line, m.last_line, "lock-coverage",
          "member '" + name[1].str() +
              "' of a mutex-owning class is neither EEB_GUARDED_BY one of "
              "its locks nor opted out with EEB_UNGUARDED(reason)");
    }
  }
}

// ------------------------------------------------------- hot-path (v2)

/// hot-path: `// eeb-hot-begin(<label>)` ... `// eeb-hot-end` fences the
/// gen/reduce/refine kernels and ReadPoint's page loop. Inside a region,
/// anything that allocates or grows a container/string is a finding —
/// those loops run per candidate per query and must work entirely out of
/// pre-sized scratch. Malformed, nested, or unclosed markers are findings
/// too, so a typo cannot silently unfence a kernel.
void CheckHotPath(const std::string& path, const std::vector<Line>& lines,
                  const Suppressions& sup, std::vector<Finding>* findings) {
  // Anchored to the start of the comment text so prose that merely mentions
  // a marker (like this file's own rule documentation) does not open one.
  static const std::regex kBegin(R"(^[\s/]*eeb-hot-begin)");
  static const std::regex kBeginLabeled(
      R"(^[\s/]*eeb-hot-begin\(([^()\s]+)\))");
  static const std::regex kEnd(R"(^[\s/]*eeb-hot-end)");
  static const std::regex kBanned(
      R"(\bnew\b|\bmake_unique\b|\bmake_shared\b|\bpush_back\b)"
      R"(|\bemplace_back\b|\.emplace\s*\(|\.resize\s*\(|\.reserve\s*\()"
      R"(|\.insert\s*\(|\.append\s*\(|\bstd::string\b|\bto_string\b)"
      R"(|\bostringstream\b|\bstringstream\b)");
  bool in_region = false;
  size_t begin_line = 0;
  std::string label;
  for (size_t i = 0; i < lines.size(); ++i) {
    const Line& l = lines[i];
    if (std::regex_search(l.comment, kBegin)) {
      std::smatch m;
      if (!std::regex_search(l.comment, m, kBeginLabeled)) {
        AddFinding(findings, sup, path, i, "hot-path",
                   "malformed hot-region marker; expected "
                   "eeb-hot-begin(<label>)");
      } else if (in_region) {
        AddFinding(findings, sup, path, i, "hot-path",
                   "nested eeb-hot-begin inside region '" + label + "'");
      } else {
        in_region = true;
        begin_line = i;
        label = m[1].str();
      }
      continue;
    }
    if (std::regex_search(l.comment, kEnd)) {
      if (!in_region) {
        AddFinding(findings, sup, path, i, "hot-path",
                   "eeb-hot-end without a matching eeb-hot-begin");
      }
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    std::smatch m;
    if (std::regex_search(l.code, m, kBanned)) {
      AddFinding(findings, sup, path, i, "hot-path",
                 "'" + TrimRight(m.str()) + "' inside hot region '" + label +
                     "'; kernels must not allocate or grow "
                     "containers/strings — size scratch before entry");
    }
  }
  if (in_region) {
    AddFindingSpan(findings, sup, path, begin_line, lines.size() - 1,
                   "hot-path",
                   "eeb-hot-begin(" + label + ") is never closed; add the "
                   "matching eeb-hot-end");
  }
}

// --------------------------------------------------- atomic-misuse (v2)

/// atomic-misuse, two legs over the known std::atomic member operations:
///  (a) a function that `.load()`s and `.store()`s the same atomic without
///      a compare_exchange on it is a non-atomic read-modify-write — two
///      racing callers both read the old value and one update is lost;
///  (b) an operation with no explicit memory_order argument silently takes
///      seq_cst — in this tree every atomic is either a relaxed statistic
///      or a carefully fenced publication, so the order must be spelled
///      out (and seq_cst, where truly meant, written as such).
void CheckAtomicMisuse(const std::string& path,
                       const std::vector<Line>& lines,
                       const Suppressions& sup,
                       std::vector<Finding>* findings) {
  if (!IsLibraryCode(path)) return;
  std::vector<size_t> line_starts;
  const std::string blank = JoinBlank(lines, &line_starts);
  const Structure structure = ScanStructure(blank);

  static const std::regex kAtomicOp(
      R"((\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and)"
      R"(|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong))"
      R"(\s*\()");

  struct Site {
    std::string var;  ///< identifier before the '.'; empty for `expr).op(`
    std::string op;
    size_t pos = 0;   ///< offset of the operator token
    size_t line = 0;
    bool has_order = false;
  };
  std::vector<Site> sites;
  for (auto it = std::sregex_iterator(blank.begin(), blank.end(), kAtomicOp);
       it != std::sregex_iterator(); ++it) {
    Site s;
    s.pos = static_cast<size_t>(it->position());
    s.op = (*it)[2].str();
    s.line = LineAt(line_starts, s.pos);
    // Walk left over the receiver to get a grouping key for the RMW leg.
    size_t j = s.pos;
    while (j > 0 &&
           (std::isalnum(static_cast<unsigned char>(blank[j - 1])) ||
            blank[j - 1] == '_')) {
      --j;
    }
    if (j < s.pos) s.var = blank.substr(j, s.pos - j);
    // Match the argument list to see whether an order is passed.
    const size_t open = s.pos + static_cast<size_t>(it->length()) - 1;
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t p = open; p < blank.size(); ++p) {
      if (blank[p] == '(') ++depth;
      if (blank[p] == ')' && --depth == 0) {
        close = p;
        break;
      }
    }
    if (close == std::string::npos) continue;  // unbalanced; not our code
    s.has_order = blank.find("memory_order", open) < close;
    sites.push_back(s);
  }

  for (const Site& s : sites) {
    if (s.has_order) continue;
    AddFinding(findings, sup, path, s.line, "atomic-misuse",
               "atomic '" + (s.var.empty() ? std::string("<expr>") : s.var) +
                   "." + s.op +
                   "' relies on the implicit seq_cst default; spell the "
                   "memory order out (std::memory_order_seq_cst if "
                   "sequential consistency is really intended)");
  }

  for (const auto& [begin, end] : structure.functions) {
    struct VarOps {
      bool loaded = false, stored = false, cas = false;
      size_t store_line = 0;
    };
    std::map<std::string, VarOps> per_var;
    for (const Site& s : sites) {
      if (s.pos < begin || s.pos >= end || s.var.empty()) continue;
      VarOps& v = per_var[s.var];
      if (s.op == "load") v.loaded = true;
      if (s.op == "store") {
        v.stored = true;
        v.store_line = s.line;
      }
      if (StartsWith(s.op, "compare_exchange")) v.cas = true;
    }
    for (const auto& [var, ops] : per_var) {
      if (!ops.loaded || !ops.stored || ops.cas) continue;
      AddFinding(findings, sup, path, ops.store_line, "atomic-misuse",
                 "load + store on atomic '" + var +
                     "' in one function is a non-atomic read-modify-write; "
                     "use fetch_*/compare_exchange, or suppress with the "
                     "single-writer invariant documented on the line");
    }
  }
}

// -------------------------------------------------------- layering (v2)

std::string ModuleOf(const std::string& path) {
  if (!StartsWith(path, "src/")) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

/// layering: every cross-module #include edge in src/ must be declared in
/// tools/layering.manifest. Scans the RAW content — Preprocess blanks
/// string literals, which is exactly where the include target lives.
void CheckLayering(const std::string& path, const std::string& content,
                   const Suppressions& sup, const LayeringManifest& manifest,
                   std::vector<Finding>* findings) {
  const std::string module = ModuleOf(path);
  if (module.empty()) return;
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  const auto mod_it = manifest.deps.find(module);
  std::istringstream in(content);
  std::string raw;
  bool undeclared_reported = false;
  size_t i = 0;
  for (; std::getline(in, raw); ++i) {
    std::smatch m;
    if (!std::regex_search(raw, m, kInclude)) continue;
    const std::string target = m[1].str();
    const size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target_module = target.substr(0, slash);
    if (target_module == module) continue;
    if (manifest.deps.find(target_module) == manifest.deps.end()) {
      continue;  // not an src/ module (third-party or generated)
    }
    if (mod_it == manifest.deps.end()) {
      if (!undeclared_reported) {
        AddFinding(findings, sup, path, i, "layering",
                   "module '" + module +
                       "' is not declared in tools/layering.manifest");
        undeclared_reported = true;
      }
      continue;
    }
    const std::vector<std::string>& allowed = mod_it->second;
    if (std::find(allowed.begin(), allowed.end(), target_module) ==
        allowed.end()) {
      AddFinding(findings, sup, path, i, "layering",
                 "#include \"" + target + "\" creates layering edge " +
                     module + " -> " + target_module +
                     ", which tools/layering.manifest does not allow");
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Trims both ends.
std::string Trim(std::string s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  s.erase(0, b);
  return TrimRight(std::move(s));
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "dropped-status", "dropped-admission", "env-io",
      "determinism",    "iostream",          "naked-new",
      "raw-ioerror",    "header-hygiene",    "layering",
      "lock-coverage",  "hot-path",          "atomic-misuse"};
  return kRules;
}

bool ParseLayeringManifest(const std::string& content, LayeringManifest* out,
                           std::string* error) {
  out->deps.clear();
  out->loaded = false;
  std::istringstream in(content);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      *error = "layering.manifest:" + std::to_string(lineno) +
               ": expected 'module: dep dep ...'";
      return false;
    }
    const std::string module = Trim(line.substr(0, colon));
    if (module.empty() || module.find(' ') != std::string::npos) {
      *error = "layering.manifest:" + std::to_string(lineno) +
               ": malformed module name";
      return false;
    }
    if (out->deps.count(module) > 0) {
      *error = "layering.manifest:" + std::to_string(lineno) +
               ": duplicate module '" + module + "'";
      return false;
    }
    std::vector<std::string> deps;
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.push_back(dep);
    out->deps[module] = std::move(deps);
  }
  for (const auto& [module, deps] : out->deps) {
    for (const std::string& dep : deps) {
      if (out->deps.count(dep) == 0) {
        *error = "layering.manifest: module '" + module +
                 "' depends on undeclared module '" + dep + "'";
        return false;
      }
    }
  }
  out->loaded = true;
  return true;
}

std::vector<std::string> ManifestCycle(const LayeringManifest& manifest) {
  std::map<std::string, int> color;  // 0 new, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& module) {
        color[module] = 1;
        stack.push_back(module);
        const auto it = manifest.deps.find(module);
        if (it != manifest.deps.end()) {
          for (const std::string& dep : it->second) {
            const int c = color[dep];
            if (c == 1) {
              const auto pos = std::find(stack.begin(), stack.end(), dep);
              cycle.assign(pos, stack.end());
              cycle.push_back(dep);
              return true;
            }
            if (c == 0 && visit(dep)) return true;
          }
        }
        color[module] = 2;
        stack.pop_back();
        return false;
      };
  for (const auto& [module, deps] : manifest.deps) {
    if (color[module] == 0 && visit(module)) return cycle;
  }
  return {};
}

void CheckSource(const std::string& path, const std::string& content,
                 std::vector<Finding>* findings) {
  CheckSource(path, content, LintOptions{}, findings);
}

void CheckSource(const std::string& path, const std::string& content,
                 const LintOptions& options, std::vector<Finding>* findings) {
  const std::vector<Line> lines = Preprocess(content);
  const Suppressions sup = CollectSuppressions(lines);
  const size_t first = findings->size();
  CheckDroppedStatus(path, lines, sup, findings);
  CheckDroppedAdmission(path, lines, sup, findings);
  CheckEnvIo(path, lines, sup, findings);
  CheckDeterminism(path, lines, sup, findings);
  CheckIostream(path, lines, sup, findings);
  CheckNakedNew(path, lines, sup, findings);
  CheckRawIoError(path, lines, sup, findings);
  CheckHeaderHygiene(path, lines, sup, findings);
  CheckLockCoverage(path, lines, sup, findings);
  CheckHotPath(path, lines, sup, findings);
  CheckAtomicMisuse(path, lines, sup, findings);
  if (options.layering != nullptr && options.layering->loaded) {
    CheckLayering(path, content, sup, *options.layering, findings);
  }
  std::sort(findings->begin() + first, findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

bool ApplyFixes(const std::string& path, const std::string& content,
                std::string* fixed) {
  *fixed = content;
  if (!IsLibraryCode(path)) return false;
  const std::vector<Line> lines = Preprocess(content);
  const Suppressions sup = CollectSuppressions(lines);

  // Raw lines, newline-split; structural edits below never add or remove
  // lines, so indices stay valid across both legs.
  std::vector<std::string> raw;
  {
    size_t start = 0;
    for (size_t i = 0; i <= content.size(); ++i) {
      if (i == content.size() || content[i] == '\n') {
        raw.push_back(content.substr(start, i - start));
        start = i + 1;
      }
    }
  }
  const bool trailing_newline =
      !content.empty() && content.back() == '\n';
  if (trailing_newline && !raw.empty() && raw.back().empty()) raw.pop_back();
  bool changed = false;

  // Leg 1: default-order atomic operations gain an explicit seq_cst. Only
  // single-line calls with a balanced argument list are patched; anything
  // else stays a finding for a human.
  {
    static const std::regex kAtomicOp(
        R"((\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and)"
        R"(|fetch_or|fetch_xor)\s*\()");
    for (size_t i = 0; i < raw.size(); ++i) {
      if (i >= lines.size()) break;
      if (Suppressed(sup, i, "atomic-misuse")) continue;
      // Detect on the blanked line (no strings/comments), patch the raw one.
      if (!std::regex_search(lines[i].code, kAtomicOp)) continue;
      std::string& line = raw[i];
      std::vector<size_t> opens;  // '(' offsets of each op call, in order
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kAtomicOp);
           it != std::sregex_iterator(); ++it) {
        opens.push_back(static_cast<size_t>(it->position() + it->length()) -
                        1);
      }
      for (auto o = opens.rbegin(); o != opens.rend(); ++o) {
        int depth = 0;
        size_t close = std::string::npos;
        for (size_t p = *o; p < line.size(); ++p) {
          if (line[p] == '(') ++depth;
          if (line[p] == ')' && --depth == 0) {
            close = p;
            break;
          }
        }
        if (close == std::string::npos) continue;  // spans lines; skip
        const std::string args = line.substr(*o + 1, close - *o - 1);
        if (args.find("memory_order") != std::string::npos) continue;
        if (Trim(args).empty()) {
          line.replace(*o + 1, close - *o - 1, "std::memory_order_seq_cst");
        } else {
          line.insert(close, ", std::memory_order_seq_cst");
        }
        changed = true;
      }
    }
  }

  // Leg 2: unannotated members of mutex-owning classes get an
  // EEB_UNGUARDED stub to replace with a real annotation or justification.
  // The macro expands to nothing, so appending it before the ';' is safe
  // even after a brace initializer.
  {
    std::vector<Finding> coverage;
    CheckLockCoverage(path, lines, sup, &coverage);
    std::sort(coverage.begin(), coverage.end(),
              [](const Finding& a, const Finding& b) {
                return a.end_line > b.end_line;
              });
    for (const Finding& f : coverage) {
      const size_t idx = static_cast<size_t>(f.end_line) - 1;
      if (idx >= raw.size()) continue;
      std::string& line = raw[idx];
      const size_t semi = line.rfind(';');
      if (semi == std::string::npos) continue;
      if (line.find("EEB_UNGUARDED") != std::string::npos) continue;
      line.insert(semi,
                  " EEB_UNGUARDED(\"FIXME: annotate with EEB_GUARDED_BY or "
                  "justify\")");
      changed = true;
    }
  }

  if (!changed) return false;
  std::string joined;
  for (size_t i = 0; i < raw.size(); ++i) {
    joined += raw[i];
    if (i + 1 < raw.size() || trailing_newline) joined += '\n';
  }
  *fixed = std::move(joined);
  return *fixed != content;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

std::string FormatJson(const std::vector<Finding>& findings,
                       size_t files_checked) {
  std::map<std::string, size_t> counts;
  for (const std::string& rule : RuleNames()) counts[rule] = 0;
  for (const Finding& f : findings) ++counts[f.rule];
  std::string out = "{\n  \"files_checked\": " +
                    std::to_string(files_checked) + ",\n  \"counts\": {";
  bool first = true;
  for (const std::string& rule : RuleNames()) {
    if (!first) out += ",";
    out += "\n    \"" + JsonEscape(rule) + "\": " +
           std::to_string(counts[rule]);
    first = false;
  }
  out += "\n  },\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    const int end_line = f.end_line > 0 ? f.end_line : f.line;
    out += "\n    {\"file\":\"" + JsonEscape(f.file) +
           "\",\"line\":" + std::to_string(f.line) +
           ",\"end_line\":" + std::to_string(end_line) + ",\"rule\":\"" +
           JsonEscape(f.rule) + "\",\"message\":\"" + JsonEscape(f.message) +
           "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace eeb::lint
