#include "bench_diff_core.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eeb::benchdiff {
namespace {

// ------------------------------------------------------------ JSON parser --

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    EEB_RETURN_IF_ERROR(Value(out, /*depth=*/0));
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const char* what) const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "JSON parse error at offset %zu: %s",
                  pos_, what);
    return Status::InvalidArgument(buf);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status String(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Artifact strings are ASCII; decode the escape to '?' rather
            // than implementing full UTF-16 surrogate handling.
            if (text_.size() - pos_ < 4) return Fail("bad \\u escape");
            pos_ += 4;
            out->push_back('?');
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Status Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipSpace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipSpace();
        std::string key;
        EEB_RETURN_IF_ERROR(String(&key));
        SkipSpace();
        if (!Consume(':')) return Fail("expected ':'");
        JsonValue v;
        EEB_RETURN_IF_ERROR(Value(&v, depth + 1));
        out->members.emplace_back(std::move(key), std::move(v));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipSpace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JsonValue v;
        EEB_RETURN_IF_ERROR(Value(&v, depth + 1));
        out->items.push_back(std::move(v));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return String(&out->str);
    }
    if (ConsumeWord("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    // Number: delegate validation to strtod over the longest plausible span.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("unexpected character");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Fail("bad number");
    out->type = JsonValue::Type::kNumber;
    out->number = d;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// -------------------------------------------------------------- diff body --

// Nested numeric lookup: Num(cell, "latency", "avg_seconds").
const JsonValue* Find2(const JsonValue& v, const std::string& a,
                       const std::string& b) {
  const JsonValue* inner = v.Find(a);
  return inner != nullptr ? inner->Find(b) : nullptr;
}

bool Num2(const JsonValue& v, const std::string& a, const std::string& b,
          double* out) {
  const JsonValue* n = Find2(v, a, b);
  if (n == nullptr || n->type != JsonValue::Type::kNumber) return false;
  *out = n->number;
  return true;
}

std::string FormatF(const char* fmt, double a, double b, double pct) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, a, b, pct);
  return std::string(buf);
}

// One bounded-increase check; returns true when it produced a verdict.
void CheckIncrease(const std::string& cell, const char* what, double base,
                   double cur, double max_increase, double abs_slack,
                   DiffResult* out) {
  // Guard tiny baselines: a 0.001 -> 0.002 page jump is not a regression.
  const double limit = base * (1.0 + max_increase) + abs_slack;
  if (cur > limit) {
    out->regressions.push_back(
        cell + ": " + what + " " +
        FormatF("%.4g -> %.4g (+%.1f%% over threshold)", base, cur,
                100.0 * (cur - base) / (base > 0 ? base : 1.0)));
  } else if (base > abs_slack && cur < base * 0.9) {
    out->notes.push_back(cell + ": " + what + " improved " +
                         FormatF("%.4g -> %.4g (%.1f%%)", base, cur,
                                 100.0 * (cur - base) / base));
  }
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

Status ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue{};
  Parser p(text);
  return p.Parse(out);
}

Status DiffBench(std::string_view baseline_json, std::string_view current_json,
                 const DiffOptions& options, DiffResult* out) {
  *out = DiffResult{};
  JsonValue base, cur;
  Status st = ParseJson(baseline_json, &base);
  if (!st.ok()) return Status::InvalidArgument("baseline: " + st.ToString());
  st = ParseJson(current_json, &cur);
  if (!st.ok()) return Status::InvalidArgument("current: " + st.ToString());

  const JsonValue* bver = base.Find("schema_version");
  const JsonValue* cver = cur.Find("schema_version");
  if (bver == nullptr || cver == nullptr ||
      bver->number != cver->number) {
    return Status::InvalidArgument("schema_version missing or mismatched");
  }
  const JsonValue* bsuite = base.Find("suite");
  const JsonValue* csuite = cur.Find("suite");
  if (bsuite == nullptr || csuite == nullptr || bsuite->str != csuite->str) {
    return Status::InvalidArgument("suite missing or mismatched");
  }
  // A quick-mode artifact uses shrunken datasets; comparing it against a
  // full run would flag meaningless "regressions".
  const JsonValue* bq = base.Find("quick");
  const JsonValue* cq = cur.Find("quick");
  if (bq != nullptr && cq != nullptr && bq->boolean != cq->boolean) {
    return Status::InvalidArgument(
        "quick-mode mismatch between baseline and current");
  }

  const JsonValue* bcells = base.Find("cells");
  const JsonValue* ccells = cur.Find("cells");
  if (bcells == nullptr || ccells == nullptr ||
      bcells->type != JsonValue::Type::kArray ||
      ccells->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("cells array missing");
  }

  auto cell_name = [](const JsonValue& c) {
    const JsonValue* n = c.Find("name");
    return n != nullptr ? n->str : std::string("<unnamed>");
  };
  auto find_cell = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& c : ccells->items) {
      if (cell_name(c) == name) return &c;
    }
    return nullptr;
  };

  for (const JsonValue& bc : bcells->items) {
    const std::string name = cell_name(bc);
    const JsonValue* cc = find_cell(name);
    if (cc == nullptr) {
      out->regressions.push_back(name + ": cell missing from current run");
      continue;
    }
    double b = 0.0, c = 0.0;
    if (Num2(bc, "latency", "avg_seconds", &b) &&
        Num2(*cc, "latency", "avg_seconds", &c)) {
      CheckIncrease(name, "avg latency", b, c,
                    options.max_avg_latency_increase, 1e-6, out);
    }
    if (Num2(bc, "latency", "p95_seconds", &b) &&
        Num2(*cc, "latency", "p95_seconds", &c)) {
      CheckIncrease(name, "p95 latency", b, c,
                    options.max_tail_latency_increase, 1e-6, out);
    }
    double brp = 0.0, bgp = 0.0, crp = 0.0, cgp = 0.0;
    if (Num2(bc, "io", "avg_refine_pages", &brp) &&
        Num2(bc, "io", "avg_gen_pages", &bgp) &&
        Num2(*cc, "io", "avg_refine_pages", &crp) &&
        Num2(*cc, "io", "avg_gen_pages", &cgp)) {
      CheckIncrease(name, "pages/query", brp + bgp, crp + cgp,
                    options.max_io_increase, 0.5, out);
    }
    if (Num2(bc, "cache", "hit_ratio", &b) &&
        Num2(*cc, "cache", "hit_ratio", &c)) {
      if (c < b - options.max_hit_drop) {
        out->regressions.push_back(
            name + ": hit ratio " +
            FormatF("%.4g -> %.4g (drop > %.2g)", b, c,
                    options.max_hit_drop));
      }
    }
    // Degraded-query rate: pre-robustness baselines have no section, which
    // reads as rate 0 — exactly the clean-disk expectation.
    double bdr = 0.0;
    double cdr = 0.0;
    Num2(bc, "robustness", "degraded_rate", &bdr);
    if (Num2(*cc, "robustness", "degraded_rate", &cdr) &&
        cdr > bdr + options.max_degraded_rate_increase + 1e-12) {
      out->regressions.push_back(
          name + ": degraded rate " +
          FormatF("%.4g -> %.4g (max increase %.2g)", bdr, cdr,
                  options.max_degraded_rate_increase));
    }
    // Concurrency-suite cells: modeled capacity throughput must not drop.
    if (Num2(bc, "throughput", "capacity_qps", &b) &&
        Num2(*cc, "throughput", "capacity_qps", &c)) {
      if (c < b * (1.0 - options.max_qps_drop)) {
        out->regressions.push_back(
            name + ": capacity QPS " +
            FormatF("%.4g -> %.4g (drop > %.2g)", b, c,
                    options.max_qps_drop));
      } else if (b > 0.0 && c > b * 1.10) {
        out->notes.push_back(name + ": capacity QPS improved " +
                             FormatF("%.4g -> %.4g (+%.1f%%)", b, c,
                                     100.0 * (c - b) / b));
      }
    }
    // A concurrent run that diverged from the serial reference is always a
    // regression, whatever the throughput did.
    const JsonValue* bit = cc->Find("bit_exact");
    if (bit != nullptr && bit->type == JsonValue::Type::kBool &&
        !bit->boolean) {
      out->regressions.push_back(name +
                                 ": concurrent results not bit-exact "
                                 "against the serial reference");
    }
    // Analytics-suite cells: both gates are current-only, like bit_exact —
    // an introspection layer whose MRC misprediction exceeds the budget, or
    // whose miss-cause counters don't reconcile, is broken outright.
    if (Num2(*cc, "analytics", "prediction_error", &c) &&
        c > options.max_mrc_error + 1e-12) {
      out->regressions.push_back(
          name + ": MRC prediction error " +
          FormatF("%.4g (max %.2g)", c, options.max_mrc_error, 0.0));
    }
    const JsonValue* analytics = cc->Find("analytics");
    const JsonValue* reconciled =
        analytics != nullptr ? analytics->Find("reconciled") : nullptr;
    if (reconciled != nullptr &&
        reconciled->type == JsonValue::Type::kBool && !reconciled->boolean) {
      out->regressions.push_back(
          name + ": miss classes do not reconcile with total misses");
    }
  }
  for (const JsonValue& cc : ccells->items) {
    const std::string name = cell_name(cc);
    bool in_base = false;
    for (const JsonValue& bc : bcells->items) {
      if (cell_name(bc) == name) {
        in_base = true;
        break;
      }
    }
    if (!in_base) {
      out->notes.push_back(name + ": new cell (no baseline to compare)");
    }
    // Overload-suite gates are current-only and apply to every current
    // cell, baseline or not: goodput collapse, wrong answers on completed
    // queries, or a shed ledger that doesn't reconcile is broken outright.
    double gr = 0.0;
    if (Num2(cc, "overload", "goodput_ratio", &gr) &&
        gr < options.min_goodput_ratio - 1e-12) {
      out->regressions.push_back(
          name + ": goodput ratio " +
          FormatF("%.4g (min %.2g)", gr, options.min_goodput_ratio, 0.0));
    }
    const JsonValue* serve = cc.Find("serve");
    if (serve != nullptr) {
      const JsonValue* answers = serve->Find("answers_ok");
      if (answers != nullptr && answers->type == JsonValue::Type::kBool &&
          !answers->boolean) {
        out->regressions.push_back(
            name + ": completed queries not bit-exact against the serial "
                   "reference under load shedding");
      }
      const JsonValue* srec = serve->Find("reconciled");
      if (srec != nullptr && srec->type == JsonValue::Type::kBool &&
          !srec->boolean) {
        out->regressions.push_back(
            name + ": serve report does not reconcile "
                   "(completed + shed != submitted)");
      }
    }
  }
  return Status::OK();
}

}  // namespace eeb::benchdiff
