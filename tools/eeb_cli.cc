// eeb_cli — command-line front end for the library.
//
//   eeb_cli gen   --out data.fvecs [--n 50000] [--dim 64] [--ndom 1024]
//                 [--clusters 32] [--sparsity 0.0] [--seed 1]
//   eeb_cli info  --data data.fvecs
//   eeb_cli query --data data.fvecs [--queries q.fvecs] [--k 10]
//                 [--cache none|exact|hc-w|hc-v|hc-m|hc-d|hc-o|c-va]
//                 [--cache-mb 8] [--tau 0] [--workload 1000] [--test 50]
//                 [--lru] [--eager] [--deadline-ms MS] [--io-retries N]
//                 [--metrics-out m.json] [--metrics-prom m.prom]
//                 [--trace-out t.jsonl] [--profile-out p.json]
//                 [--threads N] [--repeat R] [--explain]
//                 [--admission block|shed|timeout]
//                 [--admission-timeout-ms MS] [--queue-cap N]
//                 [--stats-interval-ms MS] [--stats-out s.jsonl]
//                 [--recorder-out r.json] [--mrc-out mrc.json]
//                 [--mrc-rate 0.01] [--shadow-configs SPEC|default]
//
// `query` builds the full pipeline (point file, C2LSH, workload analysis,
// cache) in a temp directory and reports the paper-style statistics. When
// --queries is omitted a Zipf query log is synthesized from the data.
// --metrics-out / --metrics-prom dump the full metrics registry (JSON /
// Prometheus text); --trace-out writes one JSON span per query;
// --profile-out writes the hierarchical phase profile as JSON.
//
// Live serving mode: --threads fans the test batch over a worker pool,
// --repeat re-runs it (a long-lived run), --stats-interval-ms/--stats-out
// stream one live.* JSON snapshot line per interval, --explain prints a
// per-query explain record, and --recorder-out dumps the flight recorder
// (recent ring + retained slow/degraded/shed queries).
//
// Overload mode (docs/ROBUSTNESS.md): --admission switches the batch onto
// System::Serve — "shed" drops arrivals on a full queue, "timeout" waits up
// to --admission-timeout-ms first; --queue-cap bounds the backlog, and with
// --deadline-ms the queue wait counts against each query's end-to-end
// deadline. The summary then reports the shed reconciliation.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/shadow_cache.h"
#include "core/system.h"
#include "obs/cache_analytics.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "workload/fvecs.h"
#include "workload/generator.h"

namespace {

using namespace eeb;

// Minimal --key value argument parser. Flags listed in `bool_flags` take no
// value (present means "1"); every other flag requires one — a trailing
// --flag with no value is an error, not silently ignored.
class Args {
 public:
  Args(int argc, char** argv, int start,
       const std::set<std::string>& bool_flags = {}) {
    int i = start;
    while (i < argc) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got %s\n", argv[i]);
        std::exit(2);
      }
      const std::string key = argv[i] + 2;
      if (bool_flags.count(key) > 0) {
        kv_[key] = "1";
        i += 1;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --%s\n", key.c_str());
        std::exit(2);
      }
      kv_[key] = argv[i + 1];
      i += 2;
    }
  }

  std::string Str(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  long Int(const std::string& key, long dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::atol(it->second.c_str());
  }
  double Dbl(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return kv_.count(key) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

// Cleanup run by Die before std::exit. std::exit performs no stack
// unwinding, so without this an early error path would abandon the stats
// publisher thread and lose buffered --stats-out / --mrc-out output that
// was already collected.
std::function<void()> g_die_cleanup;

[[noreturn]] void Die(const Status& st, const char* what) {
  std::fprintf(stderr, "error: %s: %s\n", what, st.ToString().c_str());
  if (g_die_cleanup) g_die_cleanup();
  std::exit(1);
}

int CmdGen(const Args& args) {
  const std::string out = args.Str("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out is required\n");
    return 2;
  }
  workload::DatasetSpec spec;
  spec.name = "cli";
  spec.n = args.Int("n", 50000);
  spec.dim = args.Int("dim", 64);
  spec.ndom = static_cast<uint32_t>(args.Int("ndom", 1024));
  spec.clusters = static_cast<uint32_t>(args.Int("clusters", 32));
  spec.cluster_stddev = args.Dbl("stddev", 0.05 * spec.ndom);
  spec.sparsity = args.Dbl("sparsity", 0.0);
  spec.seed = args.Int("seed", 1);

  Dataset data = workload::GenerateClustered(spec);
  Status st = workload::WriteFvecs(storage::Env::Default(), out, data);
  if (!st.ok()) Die(st, "write fvecs");
  std::printf("wrote %zu x %zu-d vectors to %s\n", data.size(), data.dim(),
              out.c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  const std::string path = args.Str("data", "");
  Dataset data;
  Status st = workload::ReadFvecs(storage::Env::Default(), path, &data);
  if (!st.ok()) Die(st, "read fvecs");
  std::printf("%s: %zu vectors, %zu dimensions, max value %.2f, %.1f MB "
              "as float32\n",
              path.c_str(), data.size(), data.dim(), data.MaxValue(),
              data.size() * data.dim() * 4.0 / (1 << 20));
  return 0;
}

core::AdmissionPolicy ParseAdmission(const std::string& name) {
  if (name == "block") return core::AdmissionPolicy::kBlock;
  if (name == "shed") return core::AdmissionPolicy::kShed;
  if (name == "timeout") return core::AdmissionPolicy::kTimeout;
  std::fprintf(stderr, "unknown admission policy: %s\n", name.c_str());
  std::exit(2);
}

core::CacheMethod ParseMethod(const std::string& name) {
  if (name == "none") return core::CacheMethod::kNone;
  if (name == "exact") return core::CacheMethod::kExact;
  if (name == "hc-w") return core::CacheMethod::kHcW;
  if (name == "hc-v") return core::CacheMethod::kHcV;
  if (name == "hc-m") return core::CacheMethod::kHcM;
  if (name == "hc-d") return core::CacheMethod::kHcD;
  if (name == "hc-o") return core::CacheMethod::kHcO;
  if (name == "c-va") return core::CacheMethod::kCVa;
  std::fprintf(stderr, "unknown cache method: %s\n", name.c_str());
  std::exit(2);
}

int CmdQuery(const Args& args) {
  // Strict flag validation first: a bad shadow spec or sampling rate fails
  // before any dataset or index work (and before live outputs exist).
  std::vector<cache::ShadowConfig> shadow_configs;
  const bool shadow_default = args.Str("shadow-configs", "") == "default";
  if (args.Has("shadow-configs") && !shadow_default) {
    Status sst = cache::ParseShadowConfigs(args.Str("shadow-configs", ""),
                                           &shadow_configs);
    if (!sst.ok()) Die(sst, "parse --shadow-configs");
  }
  const double mrc_rate = args.Dbl("mrc-rate", 0.01);
  if (args.Has("mrc-rate") && !(mrc_rate > 0.0 && mrc_rate <= 1.0)) {
    Die(Status::InvalidArgument("--mrc-rate must be in (0, 1]"),
        "parse --mrc-rate");
  }

  Dataset data;
  Status st = workload::ReadFvecs(storage::Env::Default(),
                                  args.Str("data", ""), &data);
  if (!st.ok()) Die(st, "read data");
  if (data.empty()) {
    std::fprintf(stderr, "query: dataset is empty\n");
    return 2;
  }

  const uint32_t ndom =
      static_cast<uint32_t>(args.Int("ndom", 0)) != 0
          ? static_cast<uint32_t>(args.Int("ndom", 0))
          : static_cast<uint32_t>(data.MaxValue()) + 1;

  workload::QueryLog log;
  if (args.Has("queries")) {
    Dataset qs;
    st = workload::ReadFvecs(storage::Env::Default(),
                             args.Str("queries", ""), &qs);
    if (!st.ok()) Die(st, "read queries");
    // First part warms the workload analysis, tail is the test set.
    const size_t test = std::min<size_t>(qs.size(), args.Int("test", 50));
    for (size_t i = 0; i + test < qs.size(); ++i) {
      auto p = qs.point(static_cast<PointId>(i));
      log.workload.emplace_back(p.begin(), p.end());
    }
    for (size_t i = qs.size() - test; i < qs.size(); ++i) {
      auto p = qs.point(static_cast<PointId>(i));
      log.test.emplace_back(p.begin(), p.end());
    }
  } else {
    workload::QueryLogSpec lspec;
    lspec.workload_size = args.Int("workload", 1000);
    lspec.test_size = args.Int("test", 50);
    lspec.jitter_stddev = 0.015 * ndom;
    log = workload::GenerateQueryLog(data, lspec);
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_cli").string();
  std::filesystem::create_directories(dir);

  core::SystemOptions opt;
  opt.ndom = ndom;
  opt.integral_values = args.Int("integral", 1) != 0;
  opt.engine.eager_miss_fetch = args.Has("eager");
  opt.engine.deadline_ms = args.Dbl("deadline-ms", 0.0);
  opt.io_retry.max_retries =
      static_cast<int>(args.Int("io-retries", opt.io_retry.max_retries));
  std::unique_ptr<core::System> system;
  st = core::System::Create(storage::Env::Default(), dir, data,
                            log.workload, opt, &system);
  if (!st.ok()) Die(st, "build system");

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  obs::Profiler prof;
  const bool want_metrics =
      args.Has("metrics-out") || args.Has("metrics-prom");
  if (want_metrics) system->EnableMetrics(&metrics);
  if (args.Has("trace-out")) system->SetTracer(&tracer);
  if (args.Has("profile-out")) system->SetProfiler(&prof);

  // Live serving mode: worker threads, periodic live.* snapshots, flight
  // recorder + per-query explain (docs/OBSERVABILITY.md).
  const size_t threads = static_cast<size_t>(args.Int("threads", 0));
  const long repeat = std::max<long>(1, args.Int("repeat", 1));
  const bool explain = args.Has("explain");
  const bool live_stats =
      args.Has("stats-interval-ms") || args.Has("stats-out");
  if ((threads > 0 || explain) && args.Has("trace-out")) {
    // The tracer is single-threaded by contract and --explain routes
    // through the concurrent path.
    std::fprintf(stderr,
                 "query: --trace-out is incompatible with --threads/"
                 "--explain\n");
    return 2;
  }
  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  system->SetWindow(&window);
  system->SetRecorder(&recorder);

  // Cache introspection (docs/OBSERVABILITY.md "Cache analytics"):
  // --mrc-out / --mrc-rate attach the reuse-distance sampler, miss
  // classifier and working-set sketches to every cache probe.
  std::unique_ptr<obs::CacheAnalytics> analytics;
  if (args.Has("mrc-out") || args.Has("mrc-rate")) {
    obs::CacheAnalytics::Options aopt;
    aopt.sampling_rate = mrc_rate;
    aopt.key_space = std::max<uint64_t>(64, data.size());
    analytics = std::make_unique<obs::CacheAnalytics>(aopt);
    if (want_metrics) analytics->BindMetrics(&metrics);
    system->SetCacheAnalytics(analytics.get());
  }

  // Live outputs must survive Die paths: std::exit runs no destructors, so
  // the registered cleanup stops the publisher (emitting its final line),
  // closes the stats file, and dumps whatever MRC data was collected.
  std::ofstream stats_file;
  std::unique_ptr<obs::StatsPublisher> publisher;
  auto write_mrc = [&]() -> Status {
    if (!args.Has("mrc-out") || analytics == nullptr) return Status::OK();
    return obs::WriteStringToFile(args.Str("mrc-out", ""),
                                  obs::ExportMrcJson(*analytics));
  };
  g_die_cleanup = [&] {
    if (publisher != nullptr) publisher->Stop();
    if (stats_file.is_open()) stats_file.close();
    (void)write_mrc();
  };

  const core::CacheMethod method = ParseMethod(args.Str("cache", "hc-o"));
  const size_t cache_bytes =
      static_cast<size_t>(args.Dbl("cache-mb", 8.0) * (1 << 20));
  st = system->ConfigureCache(method, cache_bytes,
                              static_cast<uint32_t>(args.Int("tau", 0)),
                              args.Has("lru"));
  if (!st.ok()) Die(st, "configure cache");

  // Shadow-cache simulations ride the probe stream; "default" sizes the
  // panel around the configured cache's item capacity.
  std::unique_ptr<cache::ShadowCacheSet> shadows;
  if (args.Has("shadow-configs")) {
    if (shadow_default) {
      const size_t cap =
          system->cache() != nullptr ? system->cache()->capacity_items() : 0;
      shadow_configs = cache::DefaultShadowConfigs(cap);
    }
    shadows = std::make_unique<cache::ShadowCacheSet>(shadow_configs);
    system->SetShadowCaches(shadows.get());
  }

  // The stats publisher starts after the cache is configured so its first
  // interval already observes serving traffic.
  if (live_stats) {
    std::ostream* sink = &std::cerr;
    if (args.Has("stats-out")) {
      stats_file.open(args.Str("stats-out", ""));
      if (!stats_file) {
        std::fprintf(stderr, "query: cannot open --stats-out file\n");
        return 2;
      }
      sink = &stats_file;
    }
    obs::StatsPublisher::Options pub_opt;
    pub_opt.interval_ms =
        static_cast<int>(args.Int("stats-interval-ms", 1000));
    pub_opt.pre_sample = [&system] { system->SampleWorkerGauges(); };
    publisher = std::make_unique<obs::StatsPublisher>(
        &window, want_metrics ? &metrics : nullptr, sink, pub_opt);
  }

  const size_t k = static_cast<size_t>(args.Int("k", 10));
  const bool serve_mode = args.Has("admission") || args.Has("queue-cap") ||
                          args.Has("admission-timeout-ms");
  core::AggregateResult agg;
  core::ServeReport serve_report;
  std::vector<core::QueryResult> per_query;
  for (long r = 0; r < repeat; ++r) {
    if (serve_mode) {
      core::ServeOptions sopt;
      sopt.n_threads = std::max<size_t>(1, threads);
      sopt.queue_capacity = static_cast<size_t>(args.Int("queue-cap", 0));
      sopt.admission = ParseAdmission(args.Str("admission", "block"));
      sopt.admission_timeout_ms = args.Dbl("admission-timeout-ms", 1.0);
      // With --deadline-ms the queue wait counts against the end-to-end
      // budget; without it, engine-configured semantics (same as --threads).
      sopt.deadline_ms =
          args.Has("deadline-ms") ? args.Dbl("deadline-ms", 0.0) : -1.0;
      st = system->Serve(log.test, k, sopt, &serve_report,
                         explain ? &per_query : nullptr);
      agg = serve_report.agg;
    } else if (threads > 0 || explain) {
      // --explain needs per-query results; the concurrent path is bit-exact
      // with the serial one, so one worker is a faithful substitute.
      st = system->RunQueriesConcurrent(log.test, k,
                                        std::max<size_t>(1, threads), &agg,
                                        explain ? &per_query : nullptr);
    } else {
      st = system->RunQueries(log.test, k, &agg);
    }
    if (!st.ok()) Die(st, "run queries");
  }
  if (publisher != nullptr) publisher->Stop();

  // Mirror the phase profile and the final live window (incl. the
  // live.shadow.* panels) into gauges before the registry dumps, so
  // --metrics-out is self-contained without --stats-interval-ms.
  if (args.Has("profile-out") && want_metrics) prof.PublishTo(&metrics);
  if (want_metrics) window.PublishTo(&metrics);
  if (args.Has("metrics-out")) {
    st = obs::WriteStringToFile(args.Str("metrics-out", ""),
                                obs::ExportJson(metrics));
    if (!st.ok()) Die(st, "write metrics json");
  }
  if (args.Has("metrics-prom")) {
    st = obs::WriteStringToFile(args.Str("metrics-prom", ""),
                                obs::ExportPrometheus(metrics));
    if (!st.ok()) Die(st, "write metrics prom");
  }
  if (args.Has("trace-out")) {
    st = tracer.WriteJsonl(args.Str("trace-out", ""));
    if (!st.ok()) Die(st, "write trace jsonl");
  }
  if (args.Has("profile-out")) {
    st = obs::WriteStringToFile(args.Str("profile-out", ""),
                                obs::ExportProfileJson(prof));
    if (!st.ok()) Die(st, "write profile json");
  }
  if (args.Has("recorder-out")) {
    st = obs::WriteStringToFile(args.Str("recorder-out", ""),
                                recorder.DumpJson());
    if (!st.ok()) Die(st, "write recorder json");
  }
  if (args.Has("mrc-out")) {
    st = write_mrc();
    if (!st.ok()) Die(st, "write mrc json");
  }
  if (explain) {
    for (size_t i = 0; i < per_query.size(); ++i) {
      std::printf("explain[%zu] %s\n", i,
                  obs::ExplainJson(per_query[i].explain).c_str());
    }
  }

  std::printf("dataset: %zu x %zu-d, ndom=%u | cache: %s %.1f MB tau=%u\n",
              data.size(), data.dim(), ndom, core::CacheMethodName(method),
              cache_bytes / double(1 << 20), system->last_tau());
  std::printf("queries: %zu | avg |C(q)|=%.1f remaining=%.1f fetched=%.1f\n",
              agg.queries, agg.avg_candidates, agg.avg_remaining,
              agg.avg_fetched);
  std::printf("hit ratio %.3f | prune ratio %.3f\n", agg.hit_ratio,
              agg.prune_ratio);
  std::printf("modeled response: avg %.3f s (gen %.3f + refine %.3f), "
              "p50 %.3f, p95 %.3f, p99 %.3f\n",
              agg.avg_response_seconds, agg.avg_gen_seconds,
              agg.avg_refine_seconds, agg.p50_response_seconds,
              agg.p95_response_seconds, agg.p99_response_seconds);
  std::printf("robustness: degraded %zu/%zu (rate %.3f) | substituted/q "
              "%.2f | read failures %zu | deadline cuts %zu\n",
              agg.degraded_queries, agg.queries, agg.degraded_rate,
              agg.avg_substituted, agg.read_failures, agg.deadline_cuts);
  if (serve_mode) {
    std::printf("admission: %s | submitted %zu completed %zu shed %zu "
                "(queue_full %zu timeout %zu expired %zu brownout %zu)\n",
                core::AdmissionPolicyName(
                    ParseAdmission(args.Str("admission", "block"))),
                serve_report.submitted, serve_report.completed,
                serve_report.shed, serve_report.shed_queue_full,
                serve_report.shed_timeout, serve_report.shed_expired,
                serve_report.shed_brownout);
  }
  {
    const obs::WindowSnapshot live = window.GetSnapshot();
    std::printf("live: window %.1fs qps %.1f | p95 %.4fs ewma %.4fs | "
                "hit ratio %.3f | recorded %llu (slow/degraded %llu)\n",
                live.window_seconds, live.qps, live.p95_seconds,
                live.ewma_seconds, live.hit_ratio,
                static_cast<unsigned long long>(recorder.recorded()),
                static_cast<unsigned long long>(
                    recorder.retained_slow_total()));
  }
  if (analytics != nullptr) {
    const obs::CacheAnalytics::MissBreakdown mb = analytics->miss_breakdown();
    std::printf("analytics: rate %.3g sampled %llu | misses %llu "
                "(compulsory %llu capacity %llu invalidation %llu) | "
                "predicted miss@cap %.3f\n",
                analytics->sampling_rate(),
                static_cast<unsigned long long>(analytics->sampled_accesses()),
                static_cast<unsigned long long>(mb.misses),
                static_cast<unsigned long long>(mb.compulsory),
                static_cast<unsigned long long>(mb.capacity),
                static_cast<unsigned long long>(mb.invalidation),
                analytics->PredictedMissRatioAt(analytics->reference_size()));
  }
  if (shadows != nullptr) {
    for (size_t i = 0; i < shadows->size(); ++i) {
      const cache::ShadowCache& sc = shadows->shadow(i);
      const uint64_t probes = sc.hits() + sc.misses();
      std::printf("shadow[%s %s cap=%zu]: hit ratio %.3f (%llu probes)\n",
                  sc.config().name.c_str(),
                  cache::ShadowPolicyName(sc.config().policy),
                  sc.config().capacity_items,
                  probes > 0 ? double(sc.hits()) / double(probes) : 0.0,
                  static_cast<unsigned long long>(probes));
    }
  }
  // Locals referenced by the Die cleanup are about to go out of scope
  // normally; destructors handle the flushing from here.
  g_die_cleanup = nullptr;
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: eeb_cli <gen|info|query> [--flag value ...]\n"
               "  gen   --out F [--n N --dim D --ndom V --clusters C "
               "--sparsity S --seed X]\n"
               "  info  --data F\n"
               "  query --data F [--queries F --k K --cache M --cache-mb MB "
               "--tau T]\n"
               "        [--lru] [--eager] [--deadline-ms MS] [--io-retries N]\n"
               "        [--metrics-out F.json] [--metrics-prom F.prom] "
               "[--trace-out F.jsonl]\n"
               "        [--profile-out F.json]\n"
               "        [--threads N] [--repeat R] [--explain]\n"
               "        [--admission block|shed|timeout] "
               "[--admission-timeout-ms MS] [--queue-cap N]\n"
               "        [--stats-interval-ms MS] [--stats-out F.jsonl] "
               "[--recorder-out F.json]\n"
               "        [--mrc-out F.json] [--mrc-rate R] "
               "[--shadow-configs SPEC|default]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(Args(argc, argv, 2));
  if (cmd == "info") return CmdInfo(Args(argc, argv, 2));
  if (cmd == "query") {
    return CmdQuery(Args(argc, argv, 2, {"lru", "eager", "explain"}));
  }
  Usage();
  return 2;
}
