// Unified benchmark suite runner. Executes a named suite of (dataset,
// method, cache size, k) cells through the same System/RunCell path the
// figure benches use, and emits one canonical, schema-versioned
// BENCH_<suite>.json artifact per run: per-cell latency percentiles (from
// the observability histograms), candidate-reduction ratios, modeled page
// I/O, cache hit rate, the hierarchical phase profile, and a cost-model
// validation section (predicted vs observed rho_hit / rho_prune / Crefine).
// bench_diff compares two such artifacts and gates CI on regressions.
//
// Usage:
//   eeb_bench --suite smoke [--out BENCH_smoke.json]
//   eeb_bench --suite analytics [--mrc-out MRC_analytics.json]
//   eeb_bench --list
//
// The analytics suite validates the cache-introspection layer end to end:
// LRU cells run with the sampled reuse-distance tracker attached, and the
// artifact records the MRC-predicted miss ratio next to the measured one
// (bench_diff gates on their absolute difference) plus the exact miss-cause
// breakdown and the shadow-cache panel. When a suite fails mid-run (bit
// exactness, miss-class reconciliation), the flight recorder's recent
// per-query ring is dumped to --recorder-out for post-mortem.
//
// Determinism: every suite pins its dataset/log RNG seeds (recorded in the
// artifact) and all latencies are dominated by the modeled disk (fixed
// ms/page), so artifacts are comparable across machines. EEB_QUICK shrinks
// the datasets; the artifact records the flag and bench_diff refuses to
// compare quick against non-quick runs.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cache/shadow_cache.h"
#include "common/timer.h"
#include "core/cost_model.h"
#include "core/system.h"
#include "obs/cache_analytics.h"
#include "obs/export.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "obs/window.h"
#include "workload/registry.h"

namespace eeb {
namespace {

struct CellSpec {
  std::string name;
  core::CacheMethod method = core::CacheMethod::kNone;
  double cs_frac = 0.0;  // cache size as a fraction of the point-file bytes
  size_t k = 10;
  uint32_t tau = 0;  // 0: cost-model choice
  bool lru = false;
};

struct SuiteSpec {
  std::string name;
  std::string what;
  workload::DatasetSpec dataset;
  std::vector<CellSpec> cells;
};

workload::DatasetSpec SmokeSpec() {
  workload::DatasetSpec s;
  s.name = "smoke";
  s.n = 20000;
  s.dim = 32;
  s.ndom = 256;
  s.clusters = 16;
  s.seed = 5;
  return s;
}

std::vector<SuiteSpec> AllSuites() {
  std::vector<SuiteSpec> suites;

  // CI gate: small custom dataset, the headline methods. Must stay fast in
  // Release (~1-2 min) — this is the committed-baseline suite.
  suites.push_back(
      {"smoke",
       "CI smoke cells: NO-CACHE baseline + headline methods at 10%/30% CS",
       SmokeSpec(),
       {
           {"no_cache", core::CacheMethod::kNone, 0.0, 10},
           {"exact_30", core::CacheMethod::kExact, 0.30, 10},
           {"hc_w_30", core::CacheMethod::kHcW, 0.30, 10},
           {"hc_o_30", core::CacheMethod::kHcO, 0.30, 10},
           {"hc_o_10", core::CacheMethod::kHcO, 0.10, 10},
           {"hc_o_lru_30", core::CacheMethod::kHcO, 0.30, 10, 0, true},
       }});

  // Figure subsets: the paper cells most sensitive to perf drift, on the
  // NUS-WIDE surrogate (the smallest real spec).
  suites.push_back(
      {"fig13",
       "Fig. 13 subset: response time vs cache size (EXACT / HC-D / HC-O)",
       workload::NuswSimSpec(),
       {
           {"exact_05", core::CacheMethod::kExact, 0.05, 10},
           {"exact_15", core::CacheMethod::kExact, 0.15, 10},
           {"exact_30", core::CacheMethod::kExact, 0.30, 10},
           {"hc_d_05", core::CacheMethod::kHcD, 0.05, 10},
           {"hc_d_15", core::CacheMethod::kHcD, 0.15, 10},
           {"hc_d_30", core::CacheMethod::kHcD, 0.30, 10},
           {"hc_o_05", core::CacheMethod::kHcO, 0.05, 10},
           {"hc_o_15", core::CacheMethod::kHcO, 0.15, 10},
           {"hc_o_30", core::CacheMethod::kHcO, 0.30, 10},
       }});

  suites.push_back({"fig14",
                    "Fig. 14 subset: response time vs k for HC-O at 30% CS",
                    workload::NuswSimSpec(),
                    {
                        {"hc_o_k1", core::CacheMethod::kHcO, 0.30, 1},
                        {"hc_o_k10", core::CacheMethod::kHcO, 0.30, 10},
                        {"hc_o_k25", core::CacheMethod::kHcO, 0.30, 25},
                        {"hc_o_k50", core::CacheMethod::kHcO, 0.30, 50},
                    }});

  suites.push_back(
      {"tab03",
       "Table 3 subset: every cache category at the default 30% CS",
       workload::NuswSimSpec(),
       {
           {"no_cache", core::CacheMethod::kNone, 0.0, 10},
           {"exact", core::CacheMethod::kExact, 0.30, 10},
           {"c_va", core::CacheMethod::kCVa, 0.30, 10},
           {"hc_w", core::CacheMethod::kHcW, 0.30, 10},
           {"hc_d", core::CacheMethod::kHcD, 0.30, 10},
           {"hc_o", core::CacheMethod::kHcO, 0.30, 10},
           {"ihc_o", core::CacheMethod::kIHcO, 0.30, 10},
           {"mhc_r", core::CacheMethod::kMHcR, 0.30, 10},
       }});
  return suites;
}

// --------------------------------------------------------- JSON emission --

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

// Cell names / method names / suite ids are ASCII identifiers; escaping
// covers the characters JSON forbids outright.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

// Post-mortem dump for in-run failures (satellite of the chaos_test idiom:
// when a gated invariant breaks mid-run, the recent per-query ring is worth
// more than the aggregate numbers).
void DumpRecorder(const obs::FlightRecorder& recorder,
                  const std::string& path) {
  const Status st = obs::WriteStringToFile(path, recorder.DumpJson());
  if (st.ok()) {
    std::fprintf(stderr, "flight recorder dumped to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: flight recorder dump to %s failed: %s\n",
                 path.c_str(), st.ToString().c_str());
  }
}

struct CellResult {
  CellSpec spec;
  size_t cache_bytes = 0;
  uint32_t effective_tau = 0;
  core::AggregateResult agg;
  std::string phase_profile_json;
  bool model_supported = false;
  core::ModelValidation model;
};

void AppendCellJson(std::string* out, const CellResult& c) {
  AppendF(out, "{\"name\":\"%s\",\"method\":\"%s\",\"cache_bytes\":%zu,",
          JsonEscape(c.spec.name).c_str(),
          core::CacheMethodName(c.spec.method), c.cache_bytes);
  AppendF(out, "\"k\":%zu,\"tau\":%u,\"lru\":%s,", c.spec.k, c.effective_tau,
          c.spec.lru ? "true" : "false");
  AppendF(out,
          "\"latency\":{\"avg_seconds\":%.9g,\"p50_seconds\":%.9g,"
          "\"p95_seconds\":%.9g,\"p99_seconds\":%.9g},",
          c.agg.avg_response_seconds, c.agg.p50_response_seconds,
          c.agg.p95_response_seconds, c.agg.p99_response_seconds);
  const double cand_ratio =
      c.agg.avg_candidates > 0 ? c.agg.avg_remaining / c.agg.avg_candidates
                               : 0.0;
  AppendF(out,
          "\"candidates\":{\"avg\":%.9g,\"avg_remaining\":%.9g,"
          "\"refine_ratio\":%.9g},",
          c.agg.avg_candidates, c.agg.avg_remaining, cand_ratio);
  AppendF(out,
          "\"io\":{\"avg_refine_pages\":%.9g,\"avg_gen_pages\":%.9g,"
          "\"avg_gen_seq_pages\":%.9g},",
          c.agg.avg_refine_pages, c.agg.avg_gen_pages,
          c.agg.avg_gen_seq_pages);
  AppendF(out, "\"cache\":{\"hit_ratio\":%.9g,\"prune_ratio\":%.9g},",
          c.agg.hit_ratio, c.agg.prune_ratio);
  // Expected all-zero on the clean bench disk; bench_diff gates on
  // degraded_rate so a change that silently degrades queries fails CI.
  AppendF(out,
          "\"robustness\":{\"degraded_rate\":%.9g,\"degraded_queries\":%zu,"
          "\"avg_substituted\":%.9g,\"read_failures\":%zu},",
          c.agg.degraded_rate, c.agg.degraded_queries, c.agg.avg_substituted,
          c.agg.read_failures);
  out->append("\"phase_profile\":");
  out->append(c.phase_profile_json);
  out->push_back(',');
  if (c.model_supported) {
    AppendF(out,
            "\"model_error\":{\"predicted_hit\":%.9g,\"observed_hit\":%.9g,"
            "\"predicted_prune\":%.9g,\"observed_prune\":%.9g,"
            "\"predicted_crefine\":%.9g,\"observed_crefine\":%.9g,"
            "\"hit_error\":%.9g,\"prune_error\":%.9g,"
            "\"crefine_rel_error\":%.9g}",
            c.model.predicted_hit, c.model.observed_hit,
            c.model.predicted_prune, c.model.observed_prune,
            c.model.predicted_crefine, c.model.observed_crefine,
            c.model.hit_error, c.model.prune_error,
            c.model.crefine_rel_error);
  } else {
    out->append("\"model_error\":null");
  }
  out->push_back('}');
}

int RunSuite(const SuiteSpec& suite, const std::string& out_path) {
  const workload::QueryLogSpec log_spec =
      workload::MaybeQuick(workload::DefaultLogSpec());
  auto wb = bench::MakeWorkbench(suite.dataset);
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);

  obs::Profiler prof;
  wb->system->SetProfiler(&prof);

  // Telemetry stays attached for the gated runs: the bench numbers are the
  // overhead budget, so the artifact must be produced with the windowed
  // metrics and the flight recorder live, exactly like a serving process.
  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  wb->system->SetWindow(&window);
  wb->system->SetRecorder(&recorder);

  std::vector<CellResult> results;
  for (const CellSpec& cell : suite.cells) {
    std::fprintf(stderr, "[%s] cell %s...\n", suite.name.c_str(),
                 cell.name.c_str());
    // Per-cell epoch: instruments and phase tree restart at zero so the
    // recorded percentiles/profile describe exactly this cell.
    wb->metrics.ResetAll();
    prof.Reset();

    CellResult r;
    r.spec = cell;
    r.cache_bytes = static_cast<size_t>(file_bytes * cell.cs_frac);
    r.agg = bench::RunCell(*wb, cell.method, r.cache_bytes, cell.k, cell.tau,
                           cell.lru);
    r.effective_tau = wb->system->last_tau();

    prof.PublishTo(&wb->metrics);
    r.phase_profile_json = obs::ExportProfileJson(prof);

    core::CostEstimate est;
    if (wb->system->EstimateCurrentCache(cell.k, &est).ok()) {
      r.model_supported = true;
      r.model = core::ValidateEstimate(est, r.agg.hit_ratio,
                                       r.agg.prune_ratio,
                                       r.agg.avg_remaining);
      // Mirror the validation into gauges so metric exporters see it too.
      wb->metrics.GetGauge("model.predicted_hit")->Set(r.model.predicted_hit);
      wb->metrics.GetGauge("model.observed_hit")->Set(r.model.observed_hit);
      wb->metrics.GetGauge("model.predicted_prune")
          ->Set(r.model.predicted_prune);
      wb->metrics.GetGauge("model.observed_prune")
          ->Set(r.model.observed_prune);
      wb->metrics.GetGauge("model.predicted_crefine")
          ->Set(r.model.predicted_crefine);
      wb->metrics.GetGauge("model.observed_crefine")
          ->Set(r.model.observed_crefine);
      wb->metrics.GetGauge("model.crefine_rel_error")
          ->Set(r.model.crefine_rel_error);
    }
    results.push_back(std::move(r));
  }

  std::string json;
  AppendF(&json, "{\"schema_version\":1,\"suite\":\"%s\",",
          JsonEscape(suite.name).c_str());
  AppendF(&json, "\"dataset\":{\"name\":\"%s\",\"n\":%zu,\"dim\":%zu,",
          JsonEscape(wb->spec.name).c_str(), wb->spec.n, wb->spec.dim);
  AppendF(&json, "\"ndom\":%u,\"seed\":%" PRIu64 "},", wb->spec.ndom,
          wb->spec.seed);
  AppendF(&json, "\"log\":{\"test_size\":%zu,\"seed\":%" PRIu64 "},",
          wb->log.test.size(), log_spec.seed);
  const char* quick = std::getenv("EEB_QUICK");
  AppendF(&json, "\"quick\":%s,",
          quick != nullptr && quick[0] != '\0' ? "true" : "false");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  AppendF(&json, "\"build\":{\"compiler\":\"%s\",\"type\":\"%s\"},",
          JsonEscape(__VERSION__).c_str(), build_type);
  json.append("\"cells\":[");
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendCellJson(&json, results[i]);
  }
  json.append("]}\n");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[%s] wrote %s (%zu cells)\n", suite.name.c_str(),
               out_path.c_str(), results.size());
  return 0;
}

// ------------------------------------------------------ concurrency suite --
//
// Thread-scaling cells for the concurrent query engine (docs/CONCURRENCY.md).
// The gated numbers are modeled, not wall-clock: the box running the bench
// may have a single core, where wall-clock QPS cannot show scaling, and the
// latency suites already established the convention that exact I/O counts x
// the disk model dominate measured CPU. Each query's modeled service time is
// its CPU seconds plus DiskModel seconds; capacity QPS at n threads is the
// FCFS makespan over n servers (all queries arrive at t=0, each runs on the
// earliest-free server), and the open-loop percentiles replay the same
// service times against a fixed-rate arrival process at 80% of capacity.
// Wall-clock QPS from a real RunQueriesConcurrent run is recorded per cell
// (wall_qps) but informational only — bench_diff never gates on it. Every
// cell also re-checks the concurrent results bit-exact against the serial
// reference; a mismatch fails the run AND marks the artifact so bench_diff
// fails too.

double FcfsMakespan(const std::vector<double>& service, size_t n_servers) {
  std::vector<double> free_at(n_servers, 0.0);
  for (double s : service) {
    *std::min_element(free_at.begin(), free_at.end()) += s;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

// FCFS sojourn times (queue wait + service) under a deterministic bursty
// open-loop arrival process: queries arrive in groups of `burst` at the
// given mean rate (one burst every burst * interarrival seconds). Smooth
// fixed-interval arrivals below saturation never queue, which would make
// the percentiles identical at every thread count; bursts are what expose
// the latency benefit of more workers while staying fully deterministic.
std::vector<double> OpenLoopSojourns(const std::vector<double>& service,
                                     size_t n_servers,
                                     double interarrival_seconds,
                                     size_t burst) {
  std::vector<double> free_at(n_servers, 0.0);
  std::vector<double> sojourn;
  sojourn.reserve(service.size());
  for (size_t i = 0; i < service.size(); ++i) {
    const double arrival = interarrival_seconds *
                           static_cast<double>(burst) *
                           static_cast<double>(i / burst);
    double& server = *std::min_element(free_at.begin(), free_at.end());
    const double start = std::max(arrival, server);
    server = start + service[i];
    sojourn.push_back(server - arrival);
  }
  return sojourn;
}

// Exact nearest-rank percentile (the batches here are 50 queries, so the
// O(1)-memory log-bucket histogram the engine uses would be overkill).
double SortedPercentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size());
  size_t i = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  if (i >= v.size()) i = v.size() - 1;
  return v[i];
}

int RunConcurrencySuite(const std::string& out_path,
                        const std::string& recorder_path) {
  const workload::QueryLogSpec log_spec =
      workload::MaybeQuick(workload::DefaultLogSpec());
  auto wb = bench::MakeWorkbench(SmokeSpec());
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);
  const size_t cache_bytes = static_cast<size_t>(file_bytes * 0.30);
  const size_t k = 10;
  bench::Check(
      wb->system->ConfigureCache(core::CacheMethod::kHcO, cache_bytes),
      "ConfigureCache");

  // As in RunSuite: the gated wall-clock-adjacent numbers are measured with
  // live telemetry attached, so the overhead budget is part of the gate.
  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  wb->system->SetWindow(&window);
  wb->system->SetRecorder(&recorder);

  // Serial reference pass: the bit-exactness baseline and the per-query
  // modeled service times every simulation below reuses.
  std::fprintf(stderr, "[concurrency] serial reference pass...\n");
  std::vector<core::QueryResult> serial(wb->log.test.size());
  std::vector<double> service;
  service.reserve(serial.size());
  double total_service = 0.0;
  for (size_t i = 0; i < wb->log.test.size(); ++i) {
    bench::Check(wb->system->Query(wb->log.test[i], k, &serial[i]), "Query");
    storage::IoStats io = serial[i].gen_io;
    io += serial[i].refine_io;
    service.push_back(serial[i].gen_seconds + serial[i].reduce_seconds +
                      serial[i].refine_seconds +
                      wb->system->disk_model().Seconds(io));
    total_service += service.back();
  }

  struct ConcCell {
    size_t threads = 0;
    double capacity_qps = 0.0;
    double speedup = 0.0;   // vs the threads=1 cell
    double wall_qps = 0.0;  // measured, machine-dependent, never gated
    double arrival_qps = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    bool bit_exact = false;
  };
  constexpr size_t kThreadCounts[] = {1, 2, 4, 8};
  constexpr double kUtilization = 0.8;
  constexpr size_t kBurst = 8;  // clients arriving together per burst
  std::vector<ConcCell> cells;
  double base_qps = 0.0;
  bool all_exact = true;
  for (size_t n : kThreadCounts) {
    ConcCell c;
    c.threads = n;
    c.capacity_qps =
        static_cast<double>(service.size()) / FcfsMakespan(service, n);
    if (n == 1) base_qps = c.capacity_qps;
    c.speedup = base_qps > 0 ? c.capacity_qps / base_qps : 0.0;
    c.arrival_qps = kUtilization * c.capacity_qps;
    const std::vector<double> sojourns =
        OpenLoopSojourns(service, n, 1.0 / c.arrival_qps, kBurst);
    c.p50 = SortedPercentile(sojourns, 0.50);
    c.p95 = SortedPercentile(sojourns, 0.95);
    c.p99 = SortedPercentile(sojourns, 0.99);

    core::AggregateResult agg;
    std::vector<core::QueryResult> results;
    Timer wall;
    bench::Check(
        wb->system->RunQueriesConcurrent(wb->log.test, k, n, &agg, &results),
        "RunQueriesConcurrent");
    const double wall_seconds = wall.ElapsedSeconds();
    c.wall_qps = wall_seconds > 0
                     ? static_cast<double>(results.size()) / wall_seconds
                     : 0.0;
    c.bit_exact = results.size() == serial.size();
    for (size_t i = 0; c.bit_exact && i < results.size(); ++i) {
      c.bit_exact = results[i].result_ids == serial[i].result_ids &&
                    results[i].candidates == serial[i].candidates &&
                    results[i].cache_hits == serial[i].cache_hits &&
                    results[i].remaining == serial[i].remaining;
    }
    all_exact = all_exact && c.bit_exact;
    std::fprintf(stderr,
                 "[concurrency] threads=%zu capacity=%.1f qps (x%.2f) "
                 "wall=%.1f qps p95=%.3fs bit_exact=%s\n",
                 n, c.capacity_qps, c.speedup, c.wall_qps, c.p95,
                 c.bit_exact ? "yes" : "NO");
    cells.push_back(c);
  }

  std::string json;
  AppendF(&json, "{\"schema_version\":1,\"suite\":\"concurrency\",");
  AppendF(&json, "\"dataset\":{\"name\":\"%s\",\"n\":%zu,\"dim\":%zu,",
          JsonEscape(wb->spec.name).c_str(), wb->spec.n, wb->spec.dim);
  AppendF(&json, "\"ndom\":%u,\"seed\":%" PRIu64 "},", wb->spec.ndom,
          wb->spec.seed);
  AppendF(&json, "\"log\":{\"test_size\":%zu,\"seed\":%" PRIu64 "},",
          wb->log.test.size(), log_spec.seed);
  const char* quick = std::getenv("EEB_QUICK");
  AppendF(&json, "\"quick\":%s,",
          quick != nullptr && quick[0] != '\0' ? "true" : "false");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  AppendF(&json, "\"build\":{\"compiler\":\"%s\",\"type\":\"%s\"},",
          JsonEscape(__VERSION__).c_str(), build_type);
  AppendF(&json,
          "\"config\":{\"method\":\"HC-O\",\"cache_bytes\":%zu,\"k\":%zu,"
          "\"utilization\":%.9g,\"burst\":%zu,"
          "\"avg_service_seconds\":%.9g},",
          cache_bytes, k, kUtilization, kBurst,
          total_service / static_cast<double>(service.size()));
  json.append("\"cells\":[");
  for (size_t i = 0; i < cells.size(); ++i) {
    const ConcCell& c = cells[i];
    if (i > 0) json.push_back(',');
    AppendF(&json, "{\"name\":\"threads_%zu\",\"threads\":%zu,", c.threads,
            c.threads);
    AppendF(&json,
            "\"throughput\":{\"capacity_qps\":%.9g,\"speedup_vs_1\":%.9g,"
            "\"wall_qps\":%.9g},",
            c.capacity_qps, c.speedup, c.wall_qps);
    AppendF(&json,
            "\"open_loop\":{\"utilization\":%.9g,\"arrival_qps\":%.9g,"
            "\"p50_seconds\":%.9g,\"p95_seconds\":%.9g,"
            "\"p99_seconds\":%.9g},",
            kUtilization, c.arrival_qps, c.p50, c.p95, c.p99);
    AppendF(&json, "\"bit_exact\":%s}", c.bit_exact ? "true" : "false");
  }
  json.append("]}\n");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[concurrency] wrote %s (%zu cells)\n",
               out_path.c_str(), cells.size());
  if (!all_exact) {
    std::fprintf(stderr,
                 "error: concurrent results diverged from the serial "
                 "reference (see bit_exact flags)\n");
    DumpRecorder(recorder, recorder_path);
    return 1;
  }
  return 0;
}

// ------------------------------------------------------- analytics suite --
//
// Validates the cache-introspection layer against ground truth. Every cell
// is an LRU cache run with eager_miss_fetch on, so the live cache is
// exactly the admit-on-miss LRU that the Mattson stack-distance model (and
// hence the sampled MRC) predicts for: the MRC-predicted miss ratio at the
// live capacity must match the measured one to within bench_diff's
// max_mrc_error. The artifact also records the exact miss-cause breakdown
// (compulsory + capacity + invalidation must equal misses — a reconciliation
// failure fails the run and dumps the flight recorder) and the default
// shadow panel simulated over the same probe stream.

int RunAnalyticsSuite(const std::string& out_path, const std::string& mrc_path,
                      const std::string& recorder_path) {
  const workload::QueryLogSpec log_spec =
      workload::MaybeQuick(workload::DefaultLogSpec());
  core::SystemOptions opt;
  // Eager miss fetch turns every probe miss into an immediate admit; with
  // the --lru cells below the live cache is then a textbook admit-on-miss
  // LRU over the candidate stream — the reference the MRC models.
  opt.engine.eager_miss_fetch = true;
  auto wb = bench::MakeWorkbench(SmokeSpec(), opt);
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);

  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  wb->system->SetWindow(&window);
  wb->system->SetRecorder(&recorder);

  // 0.25 keeps the sampled substream statistically meaningful on the small
  // smoke stream (the production default is ~0.01 on streams orders of
  // magnitude longer) while still exercising real spatial sampling.
  constexpr double kSamplingRate = 0.25;
  constexpr size_t kK = 10;

  struct AnalyticsCellSpec {
    std::string name;
    core::CacheMethod method;
    double cs_frac;
  };
  const std::vector<AnalyticsCellSpec> cell_specs = {
      {"exact_lru_10", core::CacheMethod::kExact, 0.10},
      {"exact_lru_30", core::CacheMethod::kExact, 0.30},
      {"hc_o_lru_30", core::CacheMethod::kHcO, 0.30},
  };

  struct AnalyticsCell {
    AnalyticsCellSpec spec;
    size_t cache_bytes = 0;
    uint64_t capacity_items = 0;
    core::AggregateResult agg;
    double predicted_miss = 0.0;
    double measured_miss = 0.0;
    double prediction_error = 0.0;
    uint64_t sampled_accesses = 0;
    uint64_t tracked_keys = 0;
    obs::CacheAnalytics::MissBreakdown mb;
    bool reconciled = false;
    obs::CacheAnalytics::WorkingSet ws;
    struct ShadowStat {
      std::string name;
      std::string policy;
      size_t capacity_items = 0;
      uint64_t hits = 0;
      uint64_t misses = 0;
      double hit_ratio = 0.0;
    };
    std::vector<ShadowStat> shadow;
    std::string mrc_json;
  };

  std::vector<AnalyticsCell> cells;
  bool all_reconciled = true;
  for (const AnalyticsCellSpec& spec : cell_specs) {
    std::fprintf(stderr, "[analytics] cell %s...\n", spec.name.c_str());
    wb->metrics.ResetAll();

    AnalyticsCell c;
    c.spec = spec;
    c.cache_bytes = static_cast<size_t>(file_bytes * spec.cs_frac);

    obs::CacheAnalytics::Options aopt;
    aopt.sampling_rate = kSamplingRate;
    aopt.key_space = std::max<uint64_t>(64, wb->data.size());
    obs::CacheAnalytics analytics(aopt);
    analytics.BindMetrics(&wb->metrics);
    wb->system->SetCacheAnalytics(&analytics);

    bench::Check(wb->system->ConfigureCache(spec.method, c.cache_bytes,
                                            /*tau=*/0, /*lru=*/true),
                 "ConfigureCache");
    c.capacity_items = wb->system->cache()->capacity_items();
    cache::ShadowCacheSet shadows(
        cache::DefaultShadowConfigs(c.capacity_items));
    wb->system->SetShadowCaches(&shadows);

    bench::Check(wb->system->RunQueries(wb->log.test, kK, &c.agg),
                 "RunQueries");

    c.predicted_miss = analytics.PredictedMissRatioAt(c.capacity_items);
    c.measured_miss = 1.0 - c.agg.hit_ratio;
    c.prediction_error = std::fabs(c.predicted_miss - c.measured_miss);
    c.sampled_accesses = analytics.sampled_accesses();
    c.tracked_keys = analytics.tracked_keys();
    c.mb = analytics.miss_breakdown();
    c.reconciled =
        c.mb.compulsory + c.mb.capacity + c.mb.invalidation == c.mb.misses;
    all_reconciled = all_reconciled && c.reconciled;
    c.ws = analytics.working_set();
    for (size_t i = 0; i < shadows.size(); ++i) {
      const cache::ShadowCache& s = shadows.shadow(i);
      AnalyticsCell::ShadowStat st;
      st.name = cache::SanitizeShadowName(s.config().name);
      st.policy = cache::ShadowPolicyName(s.config().policy);
      st.capacity_items = s.config().capacity_items;
      st.hits = s.hits();
      st.misses = s.misses();
      const uint64_t total = st.hits + st.misses;
      st.hit_ratio =
          total > 0 ? static_cast<double>(st.hits) / total : 0.0;
      c.shadow.push_back(std::move(st));
    }
    c.mrc_json = analytics.MrcJson();
    std::fprintf(stderr,
                 "[analytics] %s: predicted_miss=%.4f measured_miss=%.4f "
                 "err=%.4f sampled=%" PRIu64 " reconciled=%s\n",
                 spec.name.c_str(), c.predicted_miss, c.measured_miss,
                 c.prediction_error, c.sampled_accesses,
                 c.reconciled ? "yes" : "NO");

    // Detach before the per-cell instruments go out of scope.
    wb->system->SetCacheAnalytics(nullptr);
    wb->system->SetShadowCaches(nullptr);
    cells.push_back(std::move(c));
  }

  std::string json;
  AppendF(&json, "{\"schema_version\":1,\"suite\":\"analytics\",");
  AppendF(&json, "\"dataset\":{\"name\":\"%s\",\"n\":%zu,\"dim\":%zu,",
          JsonEscape(wb->spec.name).c_str(), wb->spec.n, wb->spec.dim);
  AppendF(&json, "\"ndom\":%u,\"seed\":%" PRIu64 "},", wb->spec.ndom,
          wb->spec.seed);
  AppendF(&json, "\"log\":{\"test_size\":%zu,\"seed\":%" PRIu64 "},",
          wb->log.test.size(), log_spec.seed);
  const char* quick = std::getenv("EEB_QUICK");
  AppendF(&json, "\"quick\":%s,",
          quick != nullptr && quick[0] != '\0' ? "true" : "false");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  AppendF(&json, "\"build\":{\"compiler\":\"%s\",\"type\":\"%s\"},",
          JsonEscape(__VERSION__).c_str(), build_type);
  AppendF(&json,
          "\"config\":{\"sampling_rate\":%.9g,\"k\":%zu,"
          "\"eager_miss_fetch\":true,\"lru\":true},",
          kSamplingRate, kK);
  json.append("\"cells\":[");
  for (size_t i = 0; i < cells.size(); ++i) {
    const AnalyticsCell& c = cells[i];
    if (i > 0) json.push_back(',');
    AppendF(&json, "{\"name\":\"%s\",\"method\":\"%s\",\"cache_bytes\":%zu,",
            JsonEscape(c.spec.name).c_str(),
            core::CacheMethodName(c.spec.method), c.cache_bytes);
    AppendF(&json, "\"k\":%zu,\"lru\":true,", kK);
    AppendF(&json,
            "\"latency\":{\"avg_seconds\":%.9g,\"p50_seconds\":%.9g,"
            "\"p95_seconds\":%.9g,\"p99_seconds\":%.9g},",
            c.agg.avg_response_seconds, c.agg.p50_response_seconds,
            c.agg.p95_response_seconds, c.agg.p99_response_seconds);
    AppendF(&json,
            "\"io\":{\"avg_refine_pages\":%.9g,\"avg_gen_pages\":%.9g,"
            "\"avg_gen_seq_pages\":%.9g},",
            c.agg.avg_refine_pages, c.agg.avg_gen_pages,
            c.agg.avg_gen_seq_pages);
    AppendF(&json, "\"cache\":{\"hit_ratio\":%.9g,\"prune_ratio\":%.9g},",
            c.agg.hit_ratio, c.agg.prune_ratio);
    AppendF(&json,
            "\"robustness\":{\"degraded_rate\":%.9g,"
            "\"degraded_queries\":%zu,\"read_failures\":%zu},",
            c.agg.degraded_rate, c.agg.degraded_queries,
            c.agg.read_failures);
    AppendF(&json,
            "\"analytics\":{\"sampling_rate\":%.9g,"
            "\"sampled_accesses\":%" PRIu64 ",\"tracked_keys\":%" PRIu64
            ",\"capacity_items\":%" PRIu64 ",",
            kSamplingRate, c.sampled_accesses, c.tracked_keys,
            c.capacity_items);
    AppendF(&json,
            "\"predicted_miss_ratio\":%.9g,\"measured_miss_ratio\":%.9g,"
            "\"prediction_error\":%.9g,\"reconciled\":%s,",
            c.predicted_miss, c.measured_miss, c.prediction_error,
            c.reconciled ? "true" : "false");
    AppendF(&json,
            "\"miss_classes\":{\"accesses\":%" PRIu64 ",\"hits\":%" PRIu64
            ",\"misses\":%" PRIu64 ",\"compulsory\":%" PRIu64
            ",\"capacity\":%" PRIu64 ",\"invalidation\":%" PRIu64 "},",
            c.mb.accesses, c.mb.hits, c.mb.misses, c.mb.compulsory,
            c.mb.capacity, c.mb.invalidation);
    AppendF(&json,
            "\"working_set\":{\"current_cardinality\":%.9g,"
            "\"previous_cardinality\":%.9g,\"jaccard\":%.9g,"
            "\"windows\":%" PRIu64 "},",
            c.ws.current_cardinality, c.ws.previous_cardinality,
            c.ws.jaccard, c.ws.windows);
    json.append("\"shadow\":[");
    for (size_t j = 0; j < c.shadow.size(); ++j) {
      const AnalyticsCell::ShadowStat& st = c.shadow[j];
      if (j > 0) json.push_back(',');
      AppendF(&json,
              "{\"name\":\"%s\",\"policy\":\"%s\",\"capacity_items\":%zu,"
              "\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
              ",\"hit_ratio\":%.9g}",
              JsonEscape(st.name).c_str(), JsonEscape(st.policy).c_str(),
              st.capacity_items, st.hits, st.misses, st.hit_ratio);
    }
    json.append("]}}");
  }
  json.append("]}\n");

  Status st = obs::WriteStringToFile(out_path, json);
  if (!st.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[analytics] wrote %s (%zu cells)\n", out_path.c_str(),
               cells.size());

  // Companion artifact: the full per-cell miss-ratio curves (the BENCH
  // artifact carries only the single predicted-vs-measured point).
  std::string mrc;
  mrc.append("{\"schema_version\":1,\"suite\":\"analytics\",\"cells\":[");
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) mrc.push_back(',');
    AppendF(&mrc, "{\"name\":\"%s\",\"mrc\":",
            JsonEscape(cells[i].spec.name).c_str());
    mrc.append(cells[i].mrc_json);
    mrc.push_back('}');
  }
  mrc.append("]}\n");
  st = obs::WriteStringToFile(mrc_path, mrc);
  if (!st.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", mrc_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[analytics] wrote %s\n", mrc_path.c_str());

  if (!all_reconciled) {
    std::fprintf(stderr,
                 "error: miss classification failed to reconcile (see "
                 "reconciled flags)\n");
    DumpRecorder(recorder, recorder_path);
    return 1;
  }
  return 0;
}

// -------------------------------------------------------- overload suite --
//
// Overload resilience (docs/ROBUSTNESS.md): does goodput plateau near
// capacity when the offered load exceeds it, instead of collapsing under
// queueing? As with the concurrency suite the gated numbers are modeled,
// not wall-clock: the per-query modeled service times from a serial
// reference pass are replayed through a deterministic bounded-queue FCFS
// simulation with shed admission at offered loads of 0.5x/1x/2x/4x the
// modeled capacity. The gate (bench_diff --min-goodput, current-only) is
// goodput_ratio = goodput / min(arrival_qps, capacity_qps) >= 0.9 at every
// multiplier — i.e. completed work tracks offered load below saturation
// and stays within 10% of capacity above it.
//
// The suite then runs the real System::Serve entry under every admission
// policy. Wall-clock shed counts are machine-dependent and never gated;
// what IS gated (current-only, like bit_exact) is that sheds are honest:
// every completed query is bit-exact against the serial reference
// (answers_ok — a shed query must never come back wrong or degraded) and
// the report reconciles exactly (completed + shed == submitted, causes sum
// to shed, per-query shed flags match the report).

struct OverloadSim {
  size_t submitted = 0;
  size_t completed = 0;
  size_t shed = 0;
  double shed_rate = 0.0;
  double goodput_qps = 0.0;
  double goodput_ratio = 0.0;
  double p95_sojourn = 0.0;
};

// Deterministic bounded-queue FCFS: arrivals in bursts at a fixed mean
// rate; an arrival finding `queue_cap` admitted-but-unstarted queries ahead
// of it is shed (the model of BoundedTaskQueue::TryPush), everything else
// runs to completion on the earliest-free server.
OverloadSim SimulateBoundedQueue(const std::vector<double>& service,
                                 size_t n_servers, size_t queue_cap,
                                 double arrival_qps, double capacity_qps,
                                 size_t burst) {
  OverloadSim sim;
  sim.submitted = service.size();
  const double interarrival = 1.0 / arrival_qps;
  std::vector<double> free_at(n_servers, 0.0);
  std::deque<double> pending_starts;  // admitted, not yet started
  std::vector<double> sojourns;
  double last_finish = 0.0;
  for (size_t i = 0; i < service.size(); ++i) {
    const double arrival = interarrival * static_cast<double>(burst) *
                           static_cast<double>(i / burst);
    while (!pending_starts.empty() && pending_starts.front() <= arrival) {
      pending_starts.pop_front();
    }
    if (pending_starts.size() >= queue_cap) {
      ++sim.shed;
      continue;
    }
    double& server = *std::min_element(free_at.begin(), free_at.end());
    const double start = std::max(arrival, server);
    server = start + service[i];
    last_finish = std::max(last_finish, server);
    sojourns.push_back(server - arrival);
    if (start > arrival) pending_starts.push_back(start);
    ++sim.completed;
  }
  sim.shed_rate = sim.submitted > 0
                      ? static_cast<double>(sim.shed) /
                            static_cast<double>(sim.submitted)
                      : 0.0;
  sim.goodput_qps = last_finish > 0.0
                        ? static_cast<double>(sim.completed) / last_finish
                        : 0.0;
  const double deliverable = std::min(arrival_qps, capacity_qps);
  sim.goodput_ratio = deliverable > 0.0 ? sim.goodput_qps / deliverable : 0.0;
  sim.p95_sojourn = SortedPercentile(sojourns, 0.95);
  return sim;
}

int RunOverloadSuite(const std::string& out_path,
                     const std::string& recorder_path) {
  const workload::QueryLogSpec log_spec =
      workload::MaybeQuick(workload::DefaultLogSpec());
  auto wb = bench::MakeWorkbench(SmokeSpec());
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);
  const size_t cache_bytes = static_cast<size_t>(file_bytes * 0.30);
  const size_t k = 10;
  bench::Check(
      wb->system->ConfigureCache(core::CacheMethod::kHcO, cache_bytes),
      "ConfigureCache");

  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  wb->system->SetWindow(&window);
  wb->system->SetRecorder(&recorder);

  // Serial reference: bit-exactness baseline + modeled service times.
  std::fprintf(stderr, "[overload] serial reference pass...\n");
  std::vector<core::QueryResult> serial(wb->log.test.size());
  std::vector<double> service;
  service.reserve(serial.size());
  double total_service = 0.0;
  for (size_t i = 0; i < wb->log.test.size(); ++i) {
    bench::Check(wb->system->Query(wb->log.test[i], k, &serial[i]), "Query");
    storage::IoStats io = serial[i].gen_io;
    io += serial[i].refine_io;
    service.push_back(serial[i].gen_seconds + serial[i].reduce_seconds +
                      serial[i].refine_seconds +
                      wb->system->disk_model().Seconds(io));
    total_service += service.back();
  }

  constexpr size_t kThreads = 4;
  constexpr size_t kQueueCap = 16;
  constexpr size_t kBurst = 4;
  const double capacity_qps =
      static_cast<double>(service.size()) / FcfsMakespan(service, kThreads);

  struct ModeledCell {
    std::string name;
    double multiplier = 0.0;
    OverloadSim sim;
  };
  constexpr double kMultipliers[] = {0.5, 1.0, 2.0, 4.0};
  std::vector<ModeledCell> modeled;
  for (double m : kMultipliers) {
    ModeledCell c;
    c.multiplier = m;
    char name[32];
    std::snprintf(name, sizeof(name), "offered_%gx", m);
    c.name = name;
    c.sim = SimulateBoundedQueue(service, kThreads, kQueueCap,
                                 m * capacity_qps, capacity_qps, kBurst);
    std::fprintf(stderr,
                 "[overload] %s: goodput=%.1f qps ratio=%.3f shed=%zu/%zu "
                 "p95=%.3fs\n",
                 c.name.c_str(), c.sim.goodput_qps, c.sim.goodput_ratio,
                 c.sim.shed, c.sim.submitted, c.sim.p95_sojourn);
    modeled.push_back(std::move(c));
  }

  // Live Serve passes: one per admission policy. The block cell must
  // complete everything (closed-loop contract); the shed/timeout cells may
  // shed any machine-dependent amount, but always honestly.
  struct LiveCell {
    std::string name;
    core::ServeOptions opt;
    core::ServeReport report;
    bool answers_ok = false;
    bool reconciled = false;
  };
  std::vector<LiveCell> live;
  {
    LiveCell block;
    block.name = "serve_block";
    block.opt.n_threads = kThreads;
    block.opt.queue_capacity = 8;
    block.opt.admission = core::AdmissionPolicy::kBlock;
    live.push_back(block);
    LiveCell shed;
    shed.name = "serve_shed";
    shed.opt.n_threads = kThreads;
    shed.opt.queue_capacity = 4;
    shed.opt.admission = core::AdmissionPolicy::kShed;
    live.push_back(shed);
    LiveCell timeout;
    timeout.name = "serve_timeout";
    timeout.opt.n_threads = kThreads;
    timeout.opt.queue_capacity = 4;
    timeout.opt.admission = core::AdmissionPolicy::kTimeout;
    timeout.opt.admission_timeout_ms = 0.2;
    live.push_back(timeout);
  }
  bool all_honest = true;
  for (LiveCell& c : live) {
    std::fprintf(stderr, "[overload] cell %s...\n", c.name.c_str());
    std::vector<core::QueryResult> per_query;
    bench::Check(
        wb->system->Serve(wb->log.test, k, c.opt, &c.report, &per_query),
        "Serve");
    size_t flagged_shed = 0;
    c.answers_ok = per_query.size() == serial.size();
    for (size_t i = 0; i < per_query.size() && c.answers_ok; ++i) {
      if (per_query[i].shed) {
        ++flagged_shed;
        continue;
      }
      c.answers_ok = per_query[i].result_ids == serial[i].result_ids &&
                     per_query[i].candidates == serial[i].candidates &&
                     per_query[i].cache_hits == serial[i].cache_hits &&
                     per_query[i].remaining == serial[i].remaining &&
                     per_query[i].substituted == 0;
    }
    c.reconciled =
        c.report.submitted == wb->log.test.size() &&
        c.report.completed + c.report.shed == c.report.submitted &&
        c.report.shed_queue_full + c.report.shed_timeout +
                c.report.shed_expired + c.report.shed_brownout ==
            c.report.shed &&
        flagged_shed == c.report.shed;
    if (c.opt.admission == core::AdmissionPolicy::kBlock &&
        c.report.shed != 0) {
      c.reconciled = false;  // blocking admission must never shed
    }
    all_honest = all_honest && c.answers_ok && c.reconciled;
    std::fprintf(stderr,
                 "[overload] %s: submitted=%zu completed=%zu shed=%zu "
                 "answers_ok=%s reconciled=%s\n",
                 c.name.c_str(), c.report.submitted, c.report.completed,
                 c.report.shed, c.answers_ok ? "yes" : "NO",
                 c.reconciled ? "yes" : "NO");
  }

  std::string json;
  AppendF(&json, "{\"schema_version\":1,\"suite\":\"overload\",");
  AppendF(&json, "\"dataset\":{\"name\":\"%s\",\"n\":%zu,\"dim\":%zu,",
          JsonEscape(wb->spec.name).c_str(), wb->spec.n, wb->spec.dim);
  AppendF(&json, "\"ndom\":%u,\"seed\":%" PRIu64 "},", wb->spec.ndom,
          wb->spec.seed);
  AppendF(&json, "\"log\":{\"test_size\":%zu,\"seed\":%" PRIu64 "},",
          wb->log.test.size(), log_spec.seed);
  const char* quick = std::getenv("EEB_QUICK");
  AppendF(&json, "\"quick\":%s,",
          quick != nullptr && quick[0] != '\0' ? "true" : "false");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  AppendF(&json, "\"build\":{\"compiler\":\"%s\",\"type\":\"%s\"},",
          JsonEscape(__VERSION__).c_str(), build_type);
  AppendF(&json,
          "\"config\":{\"method\":\"HC-O\",\"cache_bytes\":%zu,\"k\":%zu,"
          "\"threads\":%zu,\"queue_capacity\":%zu,\"burst\":%zu,"
          "\"capacity_qps\":%.9g,\"avg_service_seconds\":%.9g},",
          cache_bytes, k, kThreads, kQueueCap, kBurst, capacity_qps,
          total_service / static_cast<double>(service.size()));
  json.append("\"cells\":[");
  for (size_t i = 0; i < modeled.size(); ++i) {
    const ModeledCell& c = modeled[i];
    if (i > 0) json.push_back(',');
    AppendF(&json, "{\"name\":\"%s\",", JsonEscape(c.name).c_str());
    AppendF(&json,
            "\"overload\":{\"offered_multiplier\":%.9g,\"arrival_qps\":%.9g,"
            "\"capacity_qps\":%.9g,\"submitted\":%zu,\"completed\":%zu,"
            "\"shed\":%zu,\"shed_rate\":%.9g,\"goodput_qps\":%.9g,"
            "\"goodput_ratio\":%.9g,\"p95_sojourn_seconds\":%.9g}}",
            c.multiplier, c.multiplier * capacity_qps, capacity_qps,
            c.sim.submitted, c.sim.completed, c.sim.shed, c.sim.shed_rate,
            c.sim.goodput_qps, c.sim.goodput_ratio, c.sim.p95_sojourn);
  }
  for (const LiveCell& c : live) {
    json.push_back(',');
    AppendF(&json, "{\"name\":\"%s\",", JsonEscape(c.name).c_str());
    AppendF(&json,
            "\"serve\":{\"admission\":\"%s\",\"threads\":%zu,"
            "\"queue_capacity\":%zu,\"submitted\":%zu,\"completed\":%zu,"
            "\"shed\":%zu,\"shed_queue_full\":%zu,\"shed_timeout\":%zu,"
            "\"shed_expired\":%zu,\"shed_brownout\":%zu,"
            "\"answers_ok\":%s,\"reconciled\":%s}}",
            core::AdmissionPolicyName(c.opt.admission), c.opt.n_threads,
            c.opt.queue_capacity, c.report.submitted, c.report.completed,
            c.report.shed, c.report.shed_queue_full, c.report.shed_timeout,
            c.report.shed_expired, c.report.shed_brownout,
            c.answers_ok ? "true" : "false",
            c.reconciled ? "true" : "false");
  }
  json.append("]}\n");

  const Status st = obs::WriteStringToFile(out_path, json);
  if (!st.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[overload] wrote %s (%zu cells)\n", out_path.c_str(),
               modeled.size() + live.size());
  if (!all_honest) {
    std::fprintf(stderr,
                 "error: a Serve cell shed dishonestly (see answers_ok / "
                 "reconciled flags)\n");
    DumpRecorder(recorder, recorder_path);
    return 1;
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: eeb_bench --suite <name> [--out <path>]\n"
               "                 [--mrc-out <path>] [--recorder-out <path>]\n"
               "       eeb_bench --list\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string suite_name;
  std::string out_path;
  std::string mrc_path;
  std::string recorder_path;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--suite" || arg == "--out" || arg == "--mrc-out" ||
               arg == "--recorder-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return Usage();
      }
      const std::string value = argv[++i];
      if (arg == "--suite") {
        suite_name = value;
      } else if (arg == "--out") {
        out_path = value;
      } else if (arg == "--mrc-out") {
        mrc_path = value;
      } else {
        recorder_path = value;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  const std::vector<SuiteSpec> suites = AllSuites();
  if (list) {
    for (const SuiteSpec& s : suites) {
      std::printf("%-8s %zu cells  %s\n", s.name.c_str(), s.cells.size(),
                  s.what.c_str());
    }
    std::printf("%-8s %zu cells  %s\n", "concurrency", size_t{4},
                "Thread scaling: modeled QPS + open-loop latency at "
                "1/2/4/8 threads (HC-O, smoke)");
    std::printf("%-8s %zu cells  %s\n", "analytics", size_t{3},
                "Cache introspection: MRC prediction vs measured LRU miss "
                "ratio, miss classes, shadow panel (smoke)");
    std::printf("%-8s %zu cells  %s\n", "overload", size_t{7},
                "Overload resilience: modeled goodput plateau at 0.5-4x "
                "capacity + honest-shedding Serve cells (HC-O, smoke)");
    return 0;
  }
  if (suite_name.empty()) return Usage();
  if (recorder_path.empty()) {
    recorder_path = "RECORDER_" + suite_name + ".json";
  }
  if (suite_name == "concurrency") {
    if (out_path.empty()) out_path = "BENCH_concurrency.json";
    return RunConcurrencySuite(out_path, recorder_path);
  }
  if (suite_name == "overload") {
    if (out_path.empty()) out_path = "BENCH_overload.json";
    return RunOverloadSuite(out_path, recorder_path);
  }
  if (suite_name == "analytics") {
    if (out_path.empty()) out_path = "BENCH_analytics.json";
    if (mrc_path.empty()) mrc_path = "MRC_analytics.json";
    return RunAnalyticsSuite(out_path, mrc_path, recorder_path);
  }
  for (const SuiteSpec& s : suites) {
    if (s.name == suite_name) {
      if (out_path.empty()) out_path = "BENCH_" + s.name + ".json";
      return RunSuite(s, out_path);
    }
  }
  std::fprintf(stderr, "error: unknown suite '%s' (try --list)\n",
               suite_name.c_str());
  return 2;
}

}  // namespace
}  // namespace eeb

int main(int argc, char** argv) { return eeb::Main(argc, argv); }
