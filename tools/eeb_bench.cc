// Unified benchmark suite runner. Executes a named suite of (dataset,
// method, cache size, k) cells through the same System/RunCell path the
// figure benches use, and emits one canonical, schema-versioned
// BENCH_<suite>.json artifact per run: per-cell latency percentiles (from
// the observability histograms), candidate-reduction ratios, modeled page
// I/O, cache hit rate, the hierarchical phase profile, and a cost-model
// validation section (predicted vs observed rho_hit / rho_prune / Crefine).
// bench_diff compares two such artifacts and gates CI on regressions.
//
// Usage:
//   eeb_bench --suite smoke [--out BENCH_smoke.json]
//   eeb_bench --list
//
// Determinism: every suite pins its dataset/log RNG seeds (recorded in the
// artifact) and all latencies are dominated by the modeled disk (fixed
// ms/page), so artifacts are comparable across machines. EEB_QUICK shrinks
// the datasets; the artifact records the flag and bench_diff refuses to
// compare quick against non-quick runs.

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/cost_model.h"
#include "core/system.h"
#include "obs/prof.h"
#include "workload/registry.h"

namespace eeb {
namespace {

struct CellSpec {
  std::string name;
  core::CacheMethod method = core::CacheMethod::kNone;
  double cs_frac = 0.0;  // cache size as a fraction of the point-file bytes
  size_t k = 10;
  uint32_t tau = 0;  // 0: cost-model choice
  bool lru = false;
};

struct SuiteSpec {
  std::string name;
  std::string what;
  workload::DatasetSpec dataset;
  std::vector<CellSpec> cells;
};

workload::DatasetSpec SmokeSpec() {
  workload::DatasetSpec s;
  s.name = "smoke";
  s.n = 20000;
  s.dim = 32;
  s.ndom = 256;
  s.clusters = 16;
  s.seed = 5;
  return s;
}

std::vector<SuiteSpec> AllSuites() {
  std::vector<SuiteSpec> suites;

  // CI gate: small custom dataset, the headline methods. Must stay fast in
  // Release (~1-2 min) — this is the committed-baseline suite.
  suites.push_back(
      {"smoke",
       "CI smoke cells: NO-CACHE baseline + headline methods at 10%/30% CS",
       SmokeSpec(),
       {
           {"no_cache", core::CacheMethod::kNone, 0.0, 10},
           {"exact_30", core::CacheMethod::kExact, 0.30, 10},
           {"hc_w_30", core::CacheMethod::kHcW, 0.30, 10},
           {"hc_o_30", core::CacheMethod::kHcO, 0.30, 10},
           {"hc_o_10", core::CacheMethod::kHcO, 0.10, 10},
           {"hc_o_lru_30", core::CacheMethod::kHcO, 0.30, 10, 0, true},
       }});

  // Figure subsets: the paper cells most sensitive to perf drift, on the
  // NUS-WIDE surrogate (the smallest real spec).
  suites.push_back(
      {"fig13",
       "Fig. 13 subset: response time vs cache size (EXACT / HC-D / HC-O)",
       workload::NuswSimSpec(),
       {
           {"exact_05", core::CacheMethod::kExact, 0.05, 10},
           {"exact_15", core::CacheMethod::kExact, 0.15, 10},
           {"exact_30", core::CacheMethod::kExact, 0.30, 10},
           {"hc_d_05", core::CacheMethod::kHcD, 0.05, 10},
           {"hc_d_15", core::CacheMethod::kHcD, 0.15, 10},
           {"hc_d_30", core::CacheMethod::kHcD, 0.30, 10},
           {"hc_o_05", core::CacheMethod::kHcO, 0.05, 10},
           {"hc_o_15", core::CacheMethod::kHcO, 0.15, 10},
           {"hc_o_30", core::CacheMethod::kHcO, 0.30, 10},
       }});

  suites.push_back({"fig14",
                    "Fig. 14 subset: response time vs k for HC-O at 30% CS",
                    workload::NuswSimSpec(),
                    {
                        {"hc_o_k1", core::CacheMethod::kHcO, 0.30, 1},
                        {"hc_o_k10", core::CacheMethod::kHcO, 0.30, 10},
                        {"hc_o_k25", core::CacheMethod::kHcO, 0.30, 25},
                        {"hc_o_k50", core::CacheMethod::kHcO, 0.30, 50},
                    }});

  suites.push_back(
      {"tab03",
       "Table 3 subset: every cache category at the default 30% CS",
       workload::NuswSimSpec(),
       {
           {"no_cache", core::CacheMethod::kNone, 0.0, 10},
           {"exact", core::CacheMethod::kExact, 0.30, 10},
           {"c_va", core::CacheMethod::kCVa, 0.30, 10},
           {"hc_w", core::CacheMethod::kHcW, 0.30, 10},
           {"hc_d", core::CacheMethod::kHcD, 0.30, 10},
           {"hc_o", core::CacheMethod::kHcO, 0.30, 10},
           {"ihc_o", core::CacheMethod::kIHcO, 0.30, 10},
           {"mhc_r", core::CacheMethod::kMHcR, 0.30, 10},
       }});
  return suites;
}

// --------------------------------------------------------- JSON emission --

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

// Cell names / method names / suite ids are ASCII identifiers; escaping
// covers the characters JSON forbids outright.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

struct CellResult {
  CellSpec spec;
  size_t cache_bytes = 0;
  uint32_t effective_tau = 0;
  core::AggregateResult agg;
  std::string phase_profile_json;
  bool model_supported = false;
  core::ModelValidation model;
};

void AppendCellJson(std::string* out, const CellResult& c) {
  AppendF(out, "{\"name\":\"%s\",\"method\":\"%s\",\"cache_bytes\":%zu,",
          JsonEscape(c.spec.name).c_str(),
          core::CacheMethodName(c.spec.method), c.cache_bytes);
  AppendF(out, "\"k\":%zu,\"tau\":%u,\"lru\":%s,", c.spec.k, c.effective_tau,
          c.spec.lru ? "true" : "false");
  AppendF(out,
          "\"latency\":{\"avg_seconds\":%.9g,\"p50_seconds\":%.9g,"
          "\"p95_seconds\":%.9g,\"p99_seconds\":%.9g},",
          c.agg.avg_response_seconds, c.agg.p50_response_seconds,
          c.agg.p95_response_seconds, c.agg.p99_response_seconds);
  const double cand_ratio =
      c.agg.avg_candidates > 0 ? c.agg.avg_remaining / c.agg.avg_candidates
                               : 0.0;
  AppendF(out,
          "\"candidates\":{\"avg\":%.9g,\"avg_remaining\":%.9g,"
          "\"refine_ratio\":%.9g},",
          c.agg.avg_candidates, c.agg.avg_remaining, cand_ratio);
  AppendF(out,
          "\"io\":{\"avg_refine_pages\":%.9g,\"avg_gen_pages\":%.9g,"
          "\"avg_gen_seq_pages\":%.9g},",
          c.agg.avg_refine_pages, c.agg.avg_gen_pages,
          c.agg.avg_gen_seq_pages);
  AppendF(out, "\"cache\":{\"hit_ratio\":%.9g,\"prune_ratio\":%.9g},",
          c.agg.hit_ratio, c.agg.prune_ratio);
  // Expected all-zero on the clean bench disk; bench_diff gates on
  // degraded_rate so a change that silently degrades queries fails CI.
  AppendF(out,
          "\"robustness\":{\"degraded_rate\":%.9g,\"degraded_queries\":%zu,"
          "\"avg_substituted\":%.9g,\"read_failures\":%zu},",
          c.agg.degraded_rate, c.agg.degraded_queries, c.agg.avg_substituted,
          c.agg.read_failures);
  out->append("\"phase_profile\":");
  out->append(c.phase_profile_json);
  out->push_back(',');
  if (c.model_supported) {
    AppendF(out,
            "\"model_error\":{\"predicted_hit\":%.9g,\"observed_hit\":%.9g,"
            "\"predicted_prune\":%.9g,\"observed_prune\":%.9g,"
            "\"predicted_crefine\":%.9g,\"observed_crefine\":%.9g,"
            "\"hit_error\":%.9g,\"prune_error\":%.9g,"
            "\"crefine_rel_error\":%.9g}",
            c.model.predicted_hit, c.model.observed_hit,
            c.model.predicted_prune, c.model.observed_prune,
            c.model.predicted_crefine, c.model.observed_crefine,
            c.model.hit_error, c.model.prune_error,
            c.model.crefine_rel_error);
  } else {
    out->append("\"model_error\":null");
  }
  out->push_back('}');
}

int RunSuite(const SuiteSpec& suite, const std::string& out_path) {
  const workload::QueryLogSpec log_spec =
      workload::MaybeQuick(workload::DefaultLogSpec());
  auto wb = bench::MakeWorkbench(suite.dataset);
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);

  obs::Profiler prof;
  wb->system->SetProfiler(&prof);

  std::vector<CellResult> results;
  for (const CellSpec& cell : suite.cells) {
    std::fprintf(stderr, "[%s] cell %s...\n", suite.name.c_str(),
                 cell.name.c_str());
    // Per-cell epoch: instruments and phase tree restart at zero so the
    // recorded percentiles/profile describe exactly this cell.
    wb->metrics.ResetAll();
    prof.Reset();

    CellResult r;
    r.spec = cell;
    r.cache_bytes = static_cast<size_t>(file_bytes * cell.cs_frac);
    r.agg = bench::RunCell(*wb, cell.method, r.cache_bytes, cell.k, cell.tau,
                           cell.lru);
    r.effective_tau = wb->system->last_tau();

    prof.PublishTo(&wb->metrics);
    r.phase_profile_json = obs::ExportProfileJson(prof);

    core::CostEstimate est;
    if (wb->system->EstimateCurrentCache(cell.k, &est).ok()) {
      r.model_supported = true;
      r.model = core::ValidateEstimate(est, r.agg.hit_ratio,
                                       r.agg.prune_ratio,
                                       r.agg.avg_remaining);
      // Mirror the validation into gauges so metric exporters see it too.
      wb->metrics.GetGauge("model.predicted_hit")->Set(r.model.predicted_hit);
      wb->metrics.GetGauge("model.observed_hit")->Set(r.model.observed_hit);
      wb->metrics.GetGauge("model.predicted_prune")
          ->Set(r.model.predicted_prune);
      wb->metrics.GetGauge("model.observed_prune")
          ->Set(r.model.observed_prune);
      wb->metrics.GetGauge("model.predicted_crefine")
          ->Set(r.model.predicted_crefine);
      wb->metrics.GetGauge("model.observed_crefine")
          ->Set(r.model.observed_crefine);
      wb->metrics.GetGauge("model.crefine_rel_error")
          ->Set(r.model.crefine_rel_error);
    }
    results.push_back(std::move(r));
  }

  std::string json;
  AppendF(&json, "{\"schema_version\":1,\"suite\":\"%s\",",
          JsonEscape(suite.name).c_str());
  AppendF(&json, "\"dataset\":{\"name\":\"%s\",\"n\":%zu,\"dim\":%zu,",
          JsonEscape(wb->spec.name).c_str(), wb->spec.n, wb->spec.dim);
  AppendF(&json, "\"ndom\":%u,\"seed\":%" PRIu64 "},", wb->spec.ndom,
          wb->spec.seed);
  AppendF(&json, "\"log\":{\"test_size\":%zu,\"seed\":%" PRIu64 "},",
          wb->log.test.size(), log_spec.seed);
  const char* quick = std::getenv("EEB_QUICK");
  AppendF(&json, "\"quick\":%s,",
          quick != nullptr && quick[0] != '\0' ? "true" : "false");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  AppendF(&json, "\"build\":{\"compiler\":\"%s\",\"type\":\"%s\"},",
          JsonEscape(__VERSION__).c_str(), build_type);
  json.append("\"cells\":[");
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendCellJson(&json, results[i]);
  }
  json.append("]}\n");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[%s] wrote %s (%zu cells)\n", suite.name.c_str(),
               out_path.c_str(), results.size());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: eeb_bench --suite <name> [--out <path>]\n"
               "       eeb_bench --list\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string suite_name;
  std::string out_path;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--suite" || arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return Usage();
      }
      (arg == "--suite" ? suite_name : out_path) = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  const std::vector<SuiteSpec> suites = AllSuites();
  if (list) {
    for (const SuiteSpec& s : suites) {
      std::printf("%-8s %zu cells  %s\n", s.name.c_str(), s.cells.size(),
                  s.what.c_str());
    }
    return 0;
  }
  if (suite_name.empty()) return Usage();
  for (const SuiteSpec& s : suites) {
    if (s.name == suite_name) {
      if (out_path.empty()) out_path = "BENCH_" + s.name + ".json";
      return RunSuite(s, out_path);
    }
  }
  std::fprintf(stderr, "error: unknown suite '%s' (try --list)\n",
               suite_name.c_str());
  return 2;
}

}  // namespace
}  // namespace eeb

int main(int argc, char** argv) { return eeb::Main(argc, argv); }
