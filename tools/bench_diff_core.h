// Comparison engine for BENCH_<suite>.json artifacts (the bench_diff
// binary adds file I/O and flag parsing around it; tests feed it in-memory
// fixtures). Includes a minimal recursive-descent JSON reader — the project
// deliberately has no third-party JSON dependency, and the artifact schema
// only needs objects, arrays, strings, numbers, bools and null.

#ifndef EEB_TOOLS_BENCH_DIFF_CORE_H_
#define EEB_TOOLS_BENCH_DIFF_CORE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace eeb::benchdiff {

/// Parsed JSON value. Numbers are doubles (the artifact never exceeds 2^53
/// integer precision); object keys keep insertion order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
[[nodiscard]] Status ParseJson(std::string_view text, JsonValue* out);

/// Regression thresholds, all expressed as relative increases (ratios) or
/// absolute drops (hit ratio). A current value beyond
/// baseline * (1 + threshold) — or below baseline - max_hit_drop for the
/// hit ratio — is a regression.
struct DiffOptions {
  double max_avg_latency_increase = 0.15;
  double max_tail_latency_increase = 0.25;  ///< p95
  double max_io_increase = 0.10;            ///< refine+gen pages per query
  double max_hit_drop = 0.05;               ///< absolute hit-ratio drop
  /// Absolute increase allowed in robustness.degraded_rate. The default 0
  /// means any degraded query on a clean-disk bench run is a regression —
  /// degradation must never happen silently. A baseline without a
  /// robustness section counts as rate 0.
  double max_degraded_rate_increase = 0.0;
  /// Relative drop allowed in throughput.capacity_qps (concurrency-suite
  /// cells): current below baseline * (1 - max_qps_drop) is a regression.
  /// Cells without a throughput section are unaffected. Independently of
  /// any threshold, a current cell with "bit_exact": false always fails —
  /// a concurrent run that diverged from the serial reference is broken,
  /// however fast it is.
  double max_qps_drop = 0.25;
  /// Absolute MRC-prediction error allowed in analytics-suite cells:
  /// a current cell whose analytics.prediction_error (|MRC-predicted −
  /// measured miss ratio|) exceeds this fails regardless of the baseline —
  /// an introspection layer that mispredicts is broken, not merely
  /// regressed. Likewise, "reconciled": false (miss-cause counters not
  /// summing to total misses) always fails. Cells without an analytics
  /// section are unaffected.
  double max_mrc_error = 0.05;
  /// Minimum overload.goodput_ratio (goodput over the deliverable rate,
  /// min(arrival, capacity)) for overload-suite cells. Current-only, like
  /// bit_exact: a serving path whose goodput collapses under offered load
  /// is broken regardless of what the baseline did. Also current-only on
  /// overload cells: "serve" cells with "answers_ok": false (a completed
  /// query diverged from the serial reference — shedding must never change
  /// answers) or "reconciled": false (completed + shed != submitted, or
  /// the shed causes don't sum) always fail. Cells without an overload or
  /// serve section are unaffected.
  double min_goodput_ratio = 0.90;
};

/// Outcome of one comparison.
struct DiffResult {
  std::vector<std::string> regressions;  ///< each fails the gate
  std::vector<std::string> notes;        ///< improvements, new cells, ...
  bool ok() const { return regressions.empty(); }
};

/// Compares two artifact documents (full JSON text). Returns non-OK only
/// when an input is unusable (parse error, wrong schema); threshold
/// violations land in `out->regressions` with the comparison still OK.
[[nodiscard]] Status DiffBench(std::string_view baseline_json,
                               std::string_view current_json,
                               const DiffOptions& options, DiffResult* out);

}  // namespace eeb::benchdiff

#endif  // EEB_TOOLS_BENCH_DIFF_CORE_H_
