// CI perf-regression gate: compares two BENCH_<suite>.json artifacts
// (baseline vs current) and exits nonzero when any cell regressed beyond
// the thresholds. Improvements and new cells are reported but never fail.
//
// Usage:
//   bench_diff --baseline bench/baselines/BENCH_smoke.json
//              --current BENCH_smoke.json
//              [--max-avg-latency 0.15] [--max-tail-latency 0.25]
//              [--max-io 0.10] [--max-hit-drop 0.05]
//              [--max-qps-drop 0.25] [--max-mrc-error 0.05]
//              [--min-goodput 0.90]
//
// Exit codes: 0 no regression, 1 regression(s) found, 2 usage/input error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_diff_core.h"

namespace eeb {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff --baseline <path> --current <path>\n"
      "                  [--max-avg-latency R] [--max-tail-latency R]\n"
      "                  [--max-io R] [--max-hit-drop R]\n"
      "                  [--max-qps-drop R] [--max-mrc-error R]\n"
      "                  [--min-goodput R]\n"
      "exit: 0 = no regression, 1 = regression, 2 = usage/input error\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  benchdiff::DiffOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
      return Usage();
    }
    const std::string val = argv[++i];
    auto ratio = [&](double* out) {
      char* end = nullptr;
      const double d = std::strtod(val.c_str(), &end);
      if (end != val.c_str() + val.size() || d < 0.0) return false;
      *out = d;
      return true;
    };
    bool ok = true;
    if (arg == "--baseline") {
      baseline_path = val;
    } else if (arg == "--current") {
      current_path = val;
    } else if (arg == "--max-avg-latency") {
      ok = ratio(&opt.max_avg_latency_increase);
    } else if (arg == "--max-tail-latency") {
      ok = ratio(&opt.max_tail_latency_increase);
    } else if (arg == "--max-io") {
      ok = ratio(&opt.max_io_increase);
    } else if (arg == "--max-hit-drop") {
      ok = ratio(&opt.max_hit_drop);
    } else if (arg == "--max-qps-drop") {
      ok = ratio(&opt.max_qps_drop);
    } else if (arg == "--max-mrc-error") {
      ok = ratio(&opt.max_mrc_error);
    } else if (arg == "--min-goodput") {
      ok = ratio(&opt.min_goodput_ratio);
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return Usage();
    }
    if (!ok) {
      std::fprintf(stderr, "error: bad value for %s: %s\n", arg.c_str(),
                   val.c_str());
      return Usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage();

  std::string baseline_json, current_json;
  if (!ReadFile(baseline_path, &baseline_json)) {
    std::fprintf(stderr, "error: cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current_json)) {
    std::fprintf(stderr, "error: cannot read %s\n", current_path.c_str());
    return 2;
  }

  benchdiff::DiffResult result;
  const Status st =
      benchdiff::DiffBench(baseline_json, current_json, opt, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 2;
  }
  for (const std::string& n : result.notes) {
    std::printf("note: %s\n", n.c_str());
  }
  for (const std::string& r : result.regressions) {
    std::printf("REGRESSION: %s\n", r.c_str());
  }
  if (!result.ok()) {
    std::printf("bench_diff: %zu regression(s) vs %s\n",
                result.regressions.size(), baseline_path.c_str());
    return 1;
  }
  std::printf("bench_diff: no regressions vs %s\n", baseline_path.c_str());
  return 0;
}

}  // namespace
}  // namespace eeb

int main(int argc, char** argv) { return eeb::Main(argc, argv); }
