// Telemetry overhead budget check (docs/OBSERVABILITY.md): runs the same
// query batch with live telemetry (windowed metrics + flight recorder +
// cumulative registry + cache analytics + shadow caches) attached and
// detached, interleaved A/B so machine drift hits both arms equally, and
// fails (exit 1) if the telemetry-on median exceeds the telemetry-off
// median by more than the budget.
//
// Budget: max(5% relative, an absolute floor). The floor keeps the check
// meaningful on fast boxes where the whole batch takes a few milliseconds
// and a single scheduler hiccup dwarfs any real 5% regression; the relative
// bound is what actually guards the hot path (one RecordQuery + one
// recorder seqlock write per query, both O(1)).
//
// Wired as the `obs_overhead` ctest; also runnable by hand:
//   obs_overhead_check [--rounds N]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cache/shadow_cache.h"
#include "common/timer.h"
#include "core/system.h"
#include "obs/cache_analytics.h"
#include "obs/recorder.h"
#include "obs/window.h"
#include "workload/registry.h"

namespace eeb {
namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

int Main(int argc, char** argv) {
  int rounds = 7;  // per arm; odd so the median is a real sample
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: obs_overhead_check [--rounds N]\n");
      return 2;
    }
  }
  if (rounds < 3) rounds = 3;

  workload::DatasetSpec spec;
  spec.name = "obs_overhead";
  spec.n = 10000;
  spec.dim = 32;
  spec.ndom = 256;
  spec.clusters = 16;
  spec.seed = 5;
  auto wb = bench::MakeWorkbench(spec);
  const size_t file_bytes = wb->spec.n * wb->spec.dim * sizeof(float);
  bench::Check(wb->system->ConfigureCache(
                   core::CacheMethod::kHcO,
                   static_cast<size_t>(file_bytes * 0.30)),
               "ConfigureCache");
  const size_t k = 10;

  // The full serving-telemetry stack, exactly as eeb_cli attaches it:
  // windowed metrics, flight recorder, the sampled cache-analytics
  // instrument at the production rate, and the default shadow panel.
  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  obs::CacheAnalytics::Options aopt;
  aopt.key_space = wb->data.size();
  obs::CacheAnalytics analytics(aopt);
  analytics.BindMetrics(&wb->metrics);
  cache::ShadowCacheSet shadows(
      cache::DefaultShadowConfigs(wb->system->cache()->capacity_items()));

  auto attach = [&] {
    wb->system->SetWindow(&window);
    wb->system->SetRecorder(&recorder);
    wb->system->SetCacheAnalytics(&analytics);
    wb->system->SetShadowCaches(&shadows);
  };
  auto detach = [&] {
    wb->system->SetWindow(nullptr);
    wb->system->SetRecorder(nullptr);
    wb->system->SetCacheAnalytics(nullptr);
    wb->system->SetShadowCaches(nullptr);
  };

  auto run_batch = [&] {
    core::AggregateResult agg;
    bench::Check(wb->system->RunQueries(wb->log.test, k, &agg), "RunQueries");
  };

  // Warmup both configurations (page allocations, first-touch shards).
  attach();
  run_batch();
  detach();
  run_batch();

  std::vector<double> off_seconds, on_seconds;
  for (int r = 0; r < rounds; ++r) {
    // Interleaved A/B: off then on each round, so slow drift (thermal,
    // noisy neighbors) cancels instead of biasing one arm.
    detach();
    Timer off;
    run_batch();
    off_seconds.push_back(off.ElapsedSeconds());

    attach();
    Timer on;
    run_batch();
    on_seconds.push_back(on.ElapsedSeconds());
  }

  // The telemetry really was live in the "on" arm: warmup + rounds batches.
  const uint64_t expected =
      static_cast<uint64_t>(rounds + 1) * wb->log.test.size();
  const obs::WindowSnapshot snap = window.GetSnapshot();
  if (snap.total_queries != expected || recorder.recorded() != expected) {
    std::fprintf(stderr,
                 "obs_overhead: telemetry not attached (window %llu, "
                 "recorder %llu, expected %llu)\n",
                 static_cast<unsigned long long>(snap.total_queries),
                 static_cast<unsigned long long>(recorder.recorded()),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  const uint64_t shadow_accesses =
      shadows.shadow(0).hits() + shadows.shadow(0).misses();
  if (analytics.total_accesses() == 0 || shadow_accesses == 0) {
    std::fprintf(stderr,
                 "obs_overhead: cache analytics not attached (analytics "
                 "%llu accesses, shadow %llu)\n",
                 static_cast<unsigned long long>(analytics.total_accesses()),
                 static_cast<unsigned long long>(shadow_accesses));
    return 1;
  }

  const double median_off = Median(off_seconds);
  const double median_on = Median(on_seconds);
  const double overhead = median_on - median_off;
  const double rel = median_off > 0.0 ? overhead / median_off : 0.0;
  constexpr double kRelBudget = 0.05;
  constexpr double kAbsFloorSeconds = 0.050;
  const double budget = std::max(kRelBudget * median_off, kAbsFloorSeconds);

  std::printf(
      "obs_overhead: batch=%zu queries rounds=%d median_off=%.4fs "
      "median_on=%.4fs overhead=%+.4fs (%+.2f%%) budget=%.4fs\n",
      wb->log.test.size(), rounds, median_off, median_on, overhead,
      100.0 * rel, budget);
  if (overhead > budget) {
    std::fprintf(stderr,
                 "obs_overhead: FAIL — telemetry overhead %.4fs exceeds "
                 "budget %.4fs\n",
                 overhead, budget);
    return 1;
  }
  std::printf("obs_overhead: OK\n");
  return 0;
}

}  // namespace
}  // namespace eeb

int main(int argc, char** argv) { return eeb::Main(argc, argv); }
