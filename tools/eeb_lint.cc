// eeb_lint: walks the source tree and enforces the project invariants
// documented in docs/STATIC_ANALYSIS.md. Exit 0 = clean, 1 = findings,
// 2 = usage or I/O error. CI and the `lint` CMake target run exactly this
// binary, so local runs and the gate can never disagree.
//
//   eeb_lint [-root=DIR] [-format=text|json] [-fix] [paths...]
//
// Default paths: src tools bench tests examples (relative to -root, which
// defaults to the current directory). When <root>/tools/layering.manifest
// exists it is loaded and the layering pass runs; a malformed or cyclic
// manifest is a hard error (exit 2) — the pass cannot be half-enforced.
// -fix rewrites mechanically fixable findings in place (explicit memory
// orders, EEB_UNGUARDED stubs), then reports what remains.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.h"

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::cerr
      << "usage: eeb_lint [-root=DIR] [-format=text|json] [-fix] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  bool fix = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-root=", 0) == 0) {
      root = arg.substr(6);
    } else if (arg.rfind("-format=", 0) == 0) {
      format = arg.substr(8);
      if (format != "text" && format != "json") return Usage();
    } else if (arg == "-fix") {
      fix = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "tests", "examples"};

  eeb::lint::LintOptions options;
  eeb::lint::LayeringManifest manifest;
  const fs::path manifest_path = fs::path(root) / "tools/layering.manifest";
  if (fs::exists(manifest_path)) {
    std::ifstream in(manifest_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!eeb::lint::ParseLayeringManifest(buf.str(), &manifest, &error)) {
      std::cerr << "eeb_lint: " << error << "\n";
      return 2;
    }
    const std::vector<std::string> cycle = eeb::lint::ManifestCycle(manifest);
    if (!cycle.empty()) {
      std::cerr << "eeb_lint: tools/layering.manifest declares a cycle: ";
      for (size_t i = 0; i < cycle.size(); ++i) {
        if (i > 0) std::cerr << " -> ";
        std::cerr << cycle[i];
      }
      std::cerr << "\n";
      return 2;
    }
    options.layering = &manifest;
  }

  std::vector<eeb::lint::Finding> findings;
  size_t files_checked = 0;
  size_t files_fixed = 0;
  for (const std::string& p : paths) {
    const fs::path base = fs::path(root) / p;
    if (!fs::exists(base)) {
      std::cerr << "eeb_lint: no such path: " << base.string() << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(base);
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::cerr << "eeb_lint: cannot read " << file.string() << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string content = buf.str();
      // Rule scoping keys off the repo-relative path with forward slashes.
      const std::string rel = fs::relative(file, root).generic_string();
      if (fix) {
        std::string fixed;
        if (eeb::lint::ApplyFixes(rel, content, &fixed)) {
          std::ofstream out(file, std::ios::binary | std::ios::trunc);
          if (!out) {
            std::cerr << "eeb_lint: cannot write " << file.string() << "\n";
            return 2;
          }
          out << fixed;
          content = std::move(fixed);
          ++files_fixed;
        }
      }
      eeb::lint::CheckSource(rel, content, options, &findings);
      ++files_checked;
    }
  }

  if (format == "json") {
    std::cout << eeb::lint::FormatJson(findings, files_checked);
  } else {
    std::cout << eeb::lint::FormatText(findings);
    if (fix) {
      std::cerr << "eeb_lint: rewrote " << files_fixed << " file(s)\n";
    }
    std::cerr << "eeb_lint: " << files_checked << " files, "
              << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
